"""Tests for the symmetry-breaking extension (repro.core.symmetry)."""

import math
import random

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.symmetry import (
    equivalence_classes,
    expand_embedding,
    expansion_factor,
    map_classes,
    symmetry_predecessors,
)
from repro.graph.builder import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.matching.limits import SearchLimits

ORACLE = Vf2Matcher()
SYM = GuPConfig(break_symmetry=True)


class TestEquivalenceClasses:
    def test_star_leaves_are_twins(self):
        q = star_graph("C", "AAAA")
        assert equivalence_classes(q) == [[1, 2, 3, 4]]

    def test_clique_twins(self):
        q = complete_graph("AAA")
        assert equivalence_classes(q) == [[0, 1, 2]]

    def test_labels_split_classes(self):
        q = star_graph("C", ["A", "A", "B"])
        assert equivalence_classes(q) == [[1, 2]]

    def test_path_has_end_twins(self):
        # Path A-B-A: the two endpoints share label and neighborhood.
        q = path_graph("ABA")
        assert equivalence_classes(q) == [[0, 2]]

    def test_asymmetric_query_has_none(self):
        q = path_graph("ABC")
        assert equivalence_classes(q) == []

    def test_classes_are_disjoint(self):
        rng = random.Random(4)
        for _ in range(20):
            n = rng.randint(2, 8)
            q = random_connected_graph(
                n, n - 1 + rng.randint(0, 6), num_labels=2,
                seed=rng.randint(0, 10**9),
            )
            classes = equivalence_classes(q)
            seen = set()
            for cls in classes:
                assert len(cls) >= 2
                assert not (set(cls) & seen)
                seen.update(cls)

    def test_classes_are_genuine_automorphisms(self):
        """Swapping two class members maps the query onto itself."""
        rng = random.Random(5)
        for _ in range(20):
            n = rng.randint(2, 7)
            q = random_connected_graph(
                n, n - 1 + rng.randint(0, 5), num_labels=2,
                seed=rng.randint(0, 10**9),
            )
            for cls in equivalence_classes(q):
                a, b = cls[0], cls[1]
                assert q.label(a) == q.label(b)
                perm = list(q.vertices())
                perm[a], perm[b] = perm[b], perm[a]
                swapped = q.relabeled(perm)
                assert swapped == q


class TestHelpers:
    def test_predecessors(self):
        prev = symmetry_predecessors([[1, 3, 4]], 5)
        assert prev == [-1, -1, -1, 1, 3]

    def test_map_classes(self):
        # old ids [1, 2] under new-id i = old-id order [2, 0, 1].
        assert map_classes([[1, 2]], old_to_new=[1, 2, 0]) == [[0, 2]]

    def test_expansion_factor(self):
        assert expansion_factor([]) == 1
        assert expansion_factor([[0, 1]]) == 2
        assert expansion_factor([[0, 1], [2, 3, 4]]) == 12

    def test_expand_embedding(self):
        out = expand_embedding((10, 20, 30), [[0, 2]])
        assert sorted(out) == [(10, 20, 30), (30, 20, 10)]

    def test_expand_with_limit(self):
        out = expand_embedding((1, 2, 3), [[0, 1, 2]], limit=4)
        assert len(out) == 4

    def test_expand_multiple_classes(self):
        out = expand_embedding((1, 2, 3, 4), [[0, 1], [2, 3]])
        assert len(out) == 4
        assert len(set(out)) == 4


class TestMatchingWithSymmetryBreaking:
    def test_star_query_exact(self):
        q = star_graph(1, [0, 0, 0])
        d = erdos_renyi_graph(15, 45, 2, seed=11)
        truth = ORACLE.match(q, d).embedding_set()
        result = match(q, d, config=SYM)
        assert result.embedding_set() == truth
        assert result.num_embeddings == len(truth)

    def test_representatives_scale_down_by_factor(self):
        q = star_graph(1, [0, 0, 0])  # leaves: 3! = 6 per representative
        d = erdos_renyi_graph(15, 45, 2, seed=11)
        result = match(q, d, config=SYM)
        if result.num_embeddings:
            assert result.num_embeddings == result.stats.embeddings_found * 6

    def test_symmetry_prunes_candidates(self):
        q = complete_graph([0, 0, 0, 0])
        d = erdos_renyi_graph(14, 60, 1, seed=12)
        plain = match(q, d)
        broken = match(q, d, config=SYM)
        assert broken.embedding_set() == plain.embedding_set()
        assert broken.stats.pruned_symmetry > 0
        assert broken.stats.recursions < plain.stats.recursions

    def test_differential_random(self, rng):
        for _ in range(30):
            nq = rng.randint(2, 6)
            nd = rng.randint(4, 12)
            labels = rng.randint(1, 2)
            q = random_connected_graph(
                nq, nq - 1 + rng.randint(0, 4), num_labels=labels,
                seed=rng.randint(0, 10**9),
            )
            d = erdos_renyi_graph(
                nd, rng.randint(0, nd * 2), num_labels=labels,
                seed=rng.randint(0, 10**9),
            )
            truth = ORACLE.match(q, d).embedding_set()
            result = match(q, d, config=SYM)
            assert result.embedding_set() == truth
            assert result.num_embeddings == len(truth)

    def test_embedding_cap_applies_to_expanded_list(self):
        q = star_graph(1, [0, 0])
        d = erdos_renyi_graph(14, 50, 2, seed=13)
        capped = match(q, d, config=SYM, limits=SearchLimits(max_embeddings=3))
        assert len(capped.embeddings) <= 3

    def test_works_with_all_guards_and_ablations(self):
        q = cycle_graph([0, 0, 0, 0])
        d = erdos_renyi_graph(12, 35, 1, seed=14)
        truth = ORACLE.match(q, d).embedding_set()
        for base in (GuPConfig.full(), GuPConfig.baseline(), GuPConfig.r_nv()):
            from dataclasses import replace

            config = replace(base, break_symmetry=True)
            assert match(q, d, config=config).embedding_set() == truth
