"""Tests for the directed and edge-labeled adapters.

The crucial property: the reduction is *exact* — the adapter's
embeddings equal the brute-force oracle's on randomized instances.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters import (
    DiGraph,
    EdgeLabeledGraph,
    directed_to_undirected,
    edge_labeled_to_vertex_labeled,
    enumerate_directed_embeddings,
    enumerate_edge_labeled_embeddings,
    match_directed,
    match_edge_labeled,
)
from repro.core.config import GuPConfig
from repro.matching.limits import SearchLimits


def random_digraph(rng, n, m, labels):
    edges = set()
    attempts = 0
    while len(edges) < m and attempts < m * 10:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return DiGraph(
        [rng.randrange(labels) for _ in range(n)], sorted(edges)
    )


def random_edge_labeled(rng, n, m, vlabels, elabels):
    edges = {}
    attempts = 0
    while len(edges) < m and attempts < m * 10:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges[(min(u, v), max(u, v))] = rng.randrange(elabels)
    return EdgeLabeledGraph(
        [rng.randrange(vlabels) for _ in range(n)],
        [(u, v, l) for (u, v), l in sorted(edges.items())],
    )


class TestDiGraph:
    def test_basic(self):
        g = DiGraph(["A", "B"], [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.successors(0) == (1,)
        assert g.predecessors(1) == (0,)
        assert g.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            DiGraph(["A"], [(0, 0)])

    def test_rejects_dangling(self):
        with pytest.raises(ValueError, match="unknown vertex"):
            DiGraph(["A"], [(0, 3)])

    def test_oracle_respects_direction(self):
        #  A -> B in data; query B -> A must not match.
        data = DiGraph(["A", "B"], [(0, 1)])
        forward = DiGraph(["A", "B"], [(0, 1)])
        backward = DiGraph(["A", "B"], [(1, 0)])
        assert enumerate_directed_embeddings(forward, data) == [(0, 1)]
        assert enumerate_directed_embeddings(backward, data) == []


class TestDirectedReduction:
    def test_reduction_shape(self):
        g = DiGraph(["A", "B"], [(0, 1)])
        reduced = directed_to_undirected(g)
        assert reduced.num_vertices == 4  # 2 originals + 2 gadget
        assert reduced.num_edges == 3
        assert reduced.label(0) == ("v", "A")

    def test_direction_preserved(self):
        data = DiGraph(["A", "A"], [(0, 1)])
        cycle_query = DiGraph(["A", "A"], [(0, 1), (1, 0)])
        assert match_directed(cycle_query, data).num_embeddings == 0
        one_way = DiGraph(["A", "A"], [(0, 1)])
        # Both orientations of the unlabeled pair: only source->target.
        assert sorted(match_directed(one_way, data).embeddings) == [(0, 1)]

    def test_two_cycle_matches_two_cycle(self):
        data = DiGraph(["A", "A"], [(0, 1), (1, 0)])
        query = DiGraph(["A", "A"], [(0, 1), (1, 0)])
        assert match_directed(query, data).num_embeddings == 2

    def test_empty_query(self):
        data = DiGraph(["A"], [])
        query = DiGraph([], [])
        assert match_directed(query, data).embeddings == [()]

    def test_limits_respected(self):
        data = DiGraph(["A"] * 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        query = DiGraph(["A", "A"], [(0, 1)])
        result = match_directed(
            query, data, limits=SearchLimits(max_embeddings=2)
        )
        assert result.num_embeddings == 2

    def test_differential_vs_oracle(self):
        rng = random.Random(31)
        for _ in range(25):
            nq = rng.randint(2, 4)
            nd = rng.randint(3, 8)
            labels = rng.randint(1, 2)
            query = random_digraph(rng, nq, rng.randint(1, 5), labels)
            data = random_digraph(rng, nd, rng.randint(0, 12), labels)
            expected = sorted(enumerate_directed_embeddings(query, data))
            got = sorted(match_directed(query, data).embeddings)
            assert got == expected, (list(query.edges()), list(data.edges()))

    def test_differential_with_baseline_config(self):
        rng = random.Random(41)
        config = GuPConfig.baseline()
        for _ in range(10):
            query = random_digraph(rng, 3, 3, 2)
            data = random_digraph(rng, 7, 10, 2)
            expected = sorted(enumerate_directed_embeddings(query, data))
            got = sorted(match_directed(query, data, config=config).embeddings)
            assert got == expected


class TestEdgeLabeledGraph:
    def test_basic(self):
        g = EdgeLabeledGraph(["A", "B"], [(0, 1, "x")])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.edge_label(0, 1) == "x"
        assert g.edge_label(1, 0) == "x"

    def test_rejects_conflicting_labels(self):
        with pytest.raises(ValueError, match="conflicting"):
            EdgeLabeledGraph(["A", "B"], [(0, 1, "x"), (1, 0, "y")])

    def test_oracle_checks_edge_labels(self):
        data = EdgeLabeledGraph(["A", "B"], [(0, 1, "x")])
        good = EdgeLabeledGraph(["A", "B"], [(0, 1, "x")])
        bad = EdgeLabeledGraph(["A", "B"], [(0, 1, "y")])
        assert enumerate_edge_labeled_embeddings(good, data) == [(0, 1)]
        assert enumerate_edge_labeled_embeddings(bad, data) == []


class TestEdgeLabeledReduction:
    def test_reduction_shape(self):
        g = EdgeLabeledGraph(["A", "B"], [(0, 1, "x")])
        reduced = edge_labeled_to_vertex_labeled(g)
        assert reduced.num_vertices == 3
        assert reduced.num_edges == 2
        assert reduced.label(2) == ("e", "x")

    def test_edge_labels_enforced(self):
        data = EdgeLabeledGraph(
            ["A", "B", "B"], [(0, 1, "x"), (0, 2, "y")]
        )
        query = EdgeLabeledGraph(["A", "B"], [(0, 1, "x")])
        result = match_edge_labeled(query, data)
        assert result.embeddings == [(0, 1)]

    def test_differential_vs_oracle(self):
        rng = random.Random(59)
        for _ in range(25):
            query = random_edge_labeled(rng, rng.randint(2, 4), rng.randint(1, 4), 2, 2)
            data = random_edge_labeled(rng, rng.randint(3, 8), rng.randint(0, 10), 2, 2)
            expected = sorted(enumerate_edge_labeled_embeddings(query, data))
            got = sorted(match_edge_labeled(query, data).embeddings)
            assert got == expected

    def test_empty_query(self):
        data = EdgeLabeledGraph(["A"], [])
        query = EdgeLabeledGraph([], [])
        assert match_edge_labeled(query, data).embeddings == [()]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=2, max_value=4),
    nd=st.integers(min_value=3, max_value=8),
)
def test_directed_adapter_property(seed, nq, nd):
    rng = random.Random(seed)
    query = random_digraph(rng, nq, rng.randint(1, nq * 2), 2)
    data = random_digraph(rng, nd, rng.randint(0, nd * 2), 2)
    expected = sorted(enumerate_directed_embeddings(query, data))
    got = sorted(match_directed(query, data).embeddings)
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=2, max_value=4),
    nd=st.integers(min_value=3, max_value=8),
)
def test_edge_labeled_adapter_property(seed, nq, nd):
    rng = random.Random(seed)
    query = random_edge_labeled(rng, nq, rng.randint(1, nq + 2), 2, 2)
    data = random_edge_labeled(rng, nd, rng.randint(0, nd * 2), 2, 2)
    expected = sorted(enumerate_edge_labeled_embeddings(query, data))
    got = sorted(match_edge_labeled(query, data).embeddings)
    assert got == expected
