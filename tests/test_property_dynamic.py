"""Property tests (hypothesis) for the dynamic-graph subsystem.

Drives random *interleaved* edit sequences — edge inserts, edge
deletes, vertex additions, including empty deltas — against a random
base graph and asserts, after **every** step:

* the incrementally-maintained graph equals a from-scratch rebuild;
* ``DataArtifacts.apply_delta`` is byte-identical (serialized) to a
  cold ``DataArtifacts`` build on the new graph, with warm mask
  ladders answering exactly what a fresh instance computes;
* the continuous matcher's cumulative diff stream replays to exactly
  the full re-match embedding set.

The deterministic edge cases the ISSUE calls out — the empty delta and
a delta that deletes the last edge of the only vertex carrying a label
(emptying an NLF row and zeroing a bucket degree) — are pinned as
explicit examples below the fuzz.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GuPEngine
from repro.dynamic.continuous import ContinuousMatcher
from repro.dynamic.delta import GraphDelta, apply_delta
from repro.filtering.artifacts import DataArtifacts, dumps_artifacts
from repro.graph.builder import GraphBuilder, graph_from_adjacency
from repro.graph.generators import erdos_renyi_graph, random_connected_graph

LABELS = ("A", "B", "C")


def random_delta(rng, graph, allow_empty=True):
    """A valid random delta against ``graph`` (possibly empty)."""
    n = graph.num_vertices
    add_vertices = tuple(
        rng.choice(LABELS) for _ in range(rng.randint(0, 2))
    )
    n_new = n + len(add_vertices)
    edges = list(graph.edges())
    remove = tuple(rng.sample(edges, min(rng.randint(0, 2), len(edges))))
    removed = set(remove)
    add = []
    for _ in range(rng.randint(0, 3)):
        u = rng.randrange(n_new)
        v = rng.randrange(n_new)
        edge = (min(u, v), max(u, v))
        if (
            u != v
            and edge not in add
            and edge not in removed
            and not (edge[1] < n and graph.has_edge(*edge))
        ):
            add.append(edge)
    delta = GraphDelta(
        add_vertices=add_vertices,
        add_edges=tuple(add),
        remove_edges=remove,
    )
    if delta.is_empty() and not allow_empty:
        return random_delta(rng, graph, allow_empty=False) if n > 1 else delta
    return delta


def builder_rebuild(graph, delta):
    b = GraphBuilder()
    b.add_vertices(graph.labels)
    b.add_vertices(delta.add_vertices)
    removed = set(delta.remove_edges)
    for u, v in graph.edges():
        if (u, v) not in removed:
            b.add_edge(u, v)
    b.add_edges(delta.add_edges)
    return b.build()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nd=st.integers(min_value=2, max_value=12),
    edge_factor=st.floats(min_value=0.0, max_value=2.0),
    steps=st.integers(min_value=1, max_value=4),
)
def test_artifact_patches_equal_cold_rebuild_along_edit_sequences(
    seed, nd, edge_factor, steps
):
    rng = random.Random(seed)
    graph = erdos_renyi_graph(
        nd, int(nd * edge_factor), num_labels=len(LABELS), seed=seed
    )
    artifacts = DataArtifacts(graph)
    probe = random_connected_graph(3, 3, num_labels=len(LABELS), seed=seed + 1)
    for _ in range(steps):
        artifacts.nlf_candidate_masks(probe)  # keep ladders warm
        delta = random_delta(rng, graph)
        new_graph, summary = apply_delta(graph, delta)
        assert new_graph == builder_rebuild(graph, delta)
        patched = artifacts.apply_delta(new_graph, summary)
        cold = DataArtifacts(new_graph)
        assert dumps_artifacts(patched) == dumps_artifacts(cold)
        for label, count in list(patched._nlf_count_masks):
            assert patched.nlf_count_mask(label, count) == cold.nlf_count_mask(
                label, count
            )
        assert patched.nlf_candidate_masks(probe) == cold.nlf_candidate_masks(
            probe
        )
        graph, artifacts = new_graph, patched


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nd=st.integers(min_value=3, max_value=10),
    nq=st.integers(min_value=2, max_value=4),
    steps=st.integers(min_value=1, max_value=3),
)
def test_continuous_diffs_replay_to_full_rematch(seed, nd, nq, steps):
    rng = random.Random(seed)
    data = erdos_renyi_graph(nd, nd * 2, num_labels=len(LABELS), seed=seed)
    query = random_connected_graph(
        nq, nq - 1 + rng.randint(0, 2), num_labels=len(LABELS), seed=seed + 1
    )
    matcher = ContinuousMatcher(data)
    matcher.register("q", query)
    for _ in range(steps):
        delta = random_delta(rng, matcher.graph)
        matcher.apply(delta)
        full = {
            tuple(e) for e in GuPEngine(matcher.graph).match(query).embeddings
        }
        assert set(matcher.matches("q")) == full


def test_empty_delta_edge_case():
    graph = erdos_renyi_graph(6, 8, num_labels=2, seed=5)
    artifacts = DataArtifacts(graph)
    new_graph, summary = apply_delta(graph, GraphDelta())
    assert new_graph == graph
    patched = artifacts.apply_delta(new_graph, summary)
    assert dumps_artifacts(patched) == dumps_artifacts(DataArtifacts(new_graph))
    assert patched.reuse_report["vertices_touched"] == 0
    matcher = ContinuousMatcher(graph)
    query = random_connected_graph(2, 1, num_labels=2, seed=6)
    before = matcher.register("q", query)
    diffs = matcher.apply(GraphDelta())
    assert diffs["q"].is_empty()
    assert matcher.matches("q") == before


def test_delete_last_edges_of_a_labels_only_vertex():
    # Vertex 3 is the only C carrier; the delta removes its every edge,
    # emptying its NLF row and dropping its bucket degree to zero.  The
    # patched artifacts must match a cold rebuild exactly, and a query
    # needing a connected C loses all its matches.
    data = graph_from_adjacency(
        ["A", "B", "A", "C"], [(0, 1), (1, 2), (1, 3), (2, 3)]
    )
    query = graph_from_adjacency(["B", "C"], [(0, 1)])
    artifacts = DataArtifacts(data)
    artifacts.nlf_candidate_masks(query)
    matcher = ContinuousMatcher(data)
    assert matcher.register("bc", query) == [(1, 3)]

    delta = GraphDelta(remove_edges=((1, 3), (2, 3)))
    new_graph, summary = apply_delta(data, delta)
    assert new_graph.degree(3) == 0
    assert new_graph.neighbor_label_frequency(3) == {}
    patched = artifacts.apply_delta(new_graph, summary)
    assert dumps_artifacts(patched) == dumps_artifacts(DataArtifacts(new_graph))
    # The C bucket survives with a zero-degree member, and its LDF mask
    # for any positive degree bound is now empty.
    assert patched.label_buckets["C"] == ((3,), (0,))
    assert patched.ldf_mask("C", 1) == 0

    diffs = matcher.apply(delta)
    assert diffs["bc"].removed == [(1, 3)]
    assert diffs["bc"].added == []
    assert matcher.matches("bc") == []
