"""Unit tests for datasets and query generation."""

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.graph.algorithms import is_connected
from repro.matching.limits import SearchLimits
from repro.workload.datasets import DATASETS, DatasetSpec, load_dataset
from repro.workload.querygen import (
    QuerySetSpec,
    classify_density,
    generate_query,
    generate_query_set,
    standard_query_sets,
)
from repro.graph.builder import cycle_graph, path_graph


class TestDatasets:
    def test_registry_has_all_four(self):
        assert set(DATASETS) == {"yeast", "human", "wordnet", "patents"}

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_profiles(self, name):
        spec = DATASETS[name]
        g = load_dataset(name, scale=0.25, seed=7)
        assert g.num_vertices > 0
        assert len(g.label_set) <= spec.num_labels

    def test_deterministic(self):
        assert load_dataset("yeast", seed=3) == load_dataset("yeast", seed=3)

    def test_different_seeds_differ(self):
        assert load_dataset("yeast", seed=3) != load_dataset("yeast", seed=4)

    def test_human_denser_than_wordnet(self):
        human = load_dataset("human", scale=0.5, seed=1)
        wordnet = load_dataset("wordnet", scale=0.5, seed=1)
        assert human.average_degree() > 3 * wordnet.average_degree()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")


class TestClassify:
    def test_sparse(self):
        assert classify_density(path_graph("AAAA")) == "sparse"

    def test_dense(self):
        from repro.graph.builder import complete_graph

        assert classify_density(complete_graph("AAAA")) == "dense"


class TestGenerateQuery:
    @pytest.mark.parametrize("density", ["sparse", "dense"])
    def test_query_properties(self, density):
        data = load_dataset("yeast", seed=5)
        for seed in range(5):
            q = generate_query(data, 8, density, seed=seed)
            assert q.num_vertices == 8
            assert is_connected(q)

    def test_sparse_queries_are_sparse(self):
        data = load_dataset("yeast", seed=5)
        for seed in range(5):
            q = generate_query(data, 12, "sparse", seed=seed)
            assert q.average_degree() < 3.0

    def test_dense_queries_on_dense_data(self):
        data = load_dataset("human", seed=5)
        q = generate_query(data, 8, "dense", seed=1)
        assert q.average_degree() >= 3.0

    def test_queries_are_satisfiable(self):
        """Extraction-by-walk guarantees at least one embedding."""
        data = load_dataset("yeast", seed=9)
        for seed in range(4):
            q = generate_query(data, 6, "sparse", seed=seed)
            res = Vf2Matcher().match(data=data, query=q, limits=SearchLimits(max_embeddings=1))
            assert res.num_embeddings >= 1

    def test_validation(self):
        data = load_dataset("yeast", seed=5)
        with pytest.raises(ValueError):
            generate_query(data, 8, "medium")
        with pytest.raises(ValueError):
            generate_query(data, 1, "sparse")
        small = path_graph("AB")
        with pytest.raises(ValueError):
            generate_query(small, 5, "sparse")

    def test_deterministic(self):
        data = load_dataset("yeast", seed=5)
        assert generate_query(data, 8, "sparse", seed=3) == generate_query(
            data, 8, "sparse", seed=3
        )


class TestQuerySets:
    def test_standard_grid(self):
        specs = standard_query_sets()
        assert len(specs) == 8
        assert {s.name for s in specs} == {
            "8S", "16S", "24S", "32S", "8D", "16D", "24D", "32D",
        }

    def test_generate_set(self):
        data = load_dataset("yeast", seed=5)
        qs = generate_query_set(data, QuerySetSpec(8, "sparse"), count=5, seed=1)
        assert len(qs) == 5
        for q in qs:
            assert q.num_vertices == 8
