"""Property-based tests (hypothesis) for the guard machinery.

Two deep invariants:

* **Completeness under guards** — for arbitrary (query, data) pairs,
  GuP with all guards finds exactly the oracle's embeddings (guards
  prune only deadends).
* **Recorded nogoods are nogoods** — every NV guard recorded during a
  run names an assignment set that no full embedding extends
  (Definition 3.14, checked against the oracle's full embedding list).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.vf2 import Vf2Matcher
from repro.core.backtrack import GuPSearch
from repro.core.nogood import NogoodStore
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.gcs import build_gcs
from repro.graph.generators import erdos_renyi_graph, random_connected_graph

ORACLE = Vf2Matcher()


def _instance(seed, nq, nd, labels, extra_q, edge_factor):
    query = random_connected_graph(
        nq, nq - 1 + extra_q, num_labels=labels, seed=seed
    )
    data = erdos_renyi_graph(
        nd, int(nd * edge_factor), num_labels=labels, seed=seed + 1
    )
    return query, data


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=2, max_value=6),
    nd=st.integers(min_value=3, max_value=14),
    labels=st.integers(min_value=1, max_value=3),
    extra_q=st.integers(min_value=0, max_value=5),
    edge_factor=st.floats(min_value=0.0, max_value=2.5),
)
def test_guarded_search_is_complete(seed, nq, nd, labels, extra_q, edge_factor):
    query, data = _instance(seed, nq, nd, labels, extra_q, edge_factor)
    expected = ORACLE.match(query, data).embedding_set()
    got = match(query, data, config=GuPConfig.full()).embedding_set()
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=3, max_value=6),
    nd=st.integers(min_value=6, max_value=14),
    labels=st.integers(min_value=1, max_value=2),
    extra_q=st.integers(min_value=1, max_value=5),
    edge_factor=st.floats(min_value=0.5, max_value=2.0),
)
def test_recorded_vertex_nogoods_are_nogoods(
    seed, nq, nd, labels, extra_q, edge_factor
):
    query, data = _instance(seed, nq, nd, labels, extra_q, edge_factor)
    gcs = build_gcs(query, data)

    # Capture every recorded NV guard together with the embedding prefix
    # at record time (the assignments the guard's dom mask refers to).
    class TracingStore(NogoodStore):
        def __init__(self):
            super().__init__()
            self.snapshots = []
            self.embedding_ref = None

        def record_vertex(self, i, v, guard):
            self.snapshots.append((i, v, guard, tuple(self.embedding_ref)))
            super().record_vertex(i, v, guard)

    store = TracingStore()
    search = GuPSearch(gcs, nogoods=store)
    store.embedding_ref = search._embedding
    search.run()
    snapshots = store.snapshots

    # Oracle ground truth: set of full embeddings (reordered numbering).
    full = ORACLE.match(gcs.query, data).embeddings
    full_set = [tuple(e) for e in full]

    for i, v, guard, prefix in snapshots:
        _node, length, dom = guard
        # The nogood D = prefix[dom bits] plus the attachment (u_i, v).
        assignments = [(b, prefix[b]) for b in range(len(prefix)) if dom >> b & 1]
        assignments.append((i, v))
        for emb in full_set:
            contains = all(emb[u] == w for u, w in assignments)
            assert not contains, (
                f"recorded NV nogood {assignments} appears in full "
                f"embedding {emb}"
            )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    r=st.sampled_from([0, 1, 2, 3, 5, None]),
)
def test_reservation_limit_never_changes_results(seed, r):
    rng = random.Random(seed)
    query, data = _instance(seed, rng.randint(3, 6), rng.randint(6, 14), 2, 3, 1.5)
    expected = ORACLE.match(query, data).embedding_set()
    got = match(
        query, data, config=GuPConfig(reservation_limit=r)
    ).embedding_set()
    assert got == expected
