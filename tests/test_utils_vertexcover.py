"""Unit + property tests for vertex cover routines."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.vertexcover import (
    approx_vertex_cover,
    constrained_vertex_cover,
    exact_vertex_cover,
)


def is_cover(cover, edges):
    return all(a in cover or b in cover for a, b in edges)


class TestApprox:
    def test_empty(self):
        assert approx_vertex_cover([]) == set()

    def test_covers(self):
        edges = [(0, 1), (1, 2), (3, 4)]
        assert is_cover(approx_vertex_cover(edges), edges)

    def test_two_approximation(self):
        # A star: optimum is 1; the 2-approx takes both endpoints of one
        # edge, hence at most 2.
        edges = [(0, i) for i in range(1, 6)]
        cover = approx_vertex_cover(edges)
        assert is_cover(cover, edges)
        assert len(cover) <= 2


class TestExact:
    def test_star_optimum(self):
        edges = [(0, i) for i in range(1, 6)]
        assert exact_vertex_cover(edges, 5) == {0}

    def test_triangle_optimum_size(self):
        cover = exact_vertex_cover([(0, 1), (1, 2), (0, 2)], 3)
        assert cover is not None and len(cover) == 2

    def test_budget_too_small(self):
        assert exact_vertex_cover([(0, 1), (2, 3)], 1) is None

    def test_empty_edges(self):
        assert exact_vertex_cover([], 0) == set()


class TestConstrained:
    def test_unconstrained_behaves_like_greedy(self):
        edges = [(0, 1), (1, 2)]
        cover = constrained_vertex_cover(edges, None, lambda s: True)
        assert cover is not None and is_cover(cover, edges)

    def test_size_limit_fails_cleanly(self):
        edges = [(0, 1), (2, 3), (4, 5)]  # needs >= 3 vertices
        assert constrained_vertex_cover(edges, 2, lambda s: True) is None

    def test_admissibility_can_force_single_endpoint(self):
        # Predicate forbids vertex 1; the cover must use 0 and 2 instead.
        edges = [(0, 1), (1, 2)]
        cover = constrained_vertex_cover(
            edges, None, lambda s: 1 not in s
        )
        assert cover == {0, 2}

    def test_admissibility_failure(self):
        edges = [(0, 1)]
        assert constrained_vertex_cover(edges, None, lambda s: False) is None

    def test_self_loop_edge(self):
        # The reservation graph can contain (w, w) edges; the cover must
        # then include w itself.
        cover = constrained_vertex_cover([(7, 7)], 3, lambda s: True)
        assert cover == {7}

    def test_empty_edges_gives_empty_cover(self):
        assert constrained_vertex_cover([], 0, lambda s: True) == set()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        max_size=12,
    ),
    st.integers(min_value=0, max_value=2**30),
)
def test_constrained_result_is_always_a_cover(edges, seed):
    rng = random.Random(seed)
    forbidden = {v for v in range(9) if rng.random() < 0.25}

    def admissible(s):
        return not (s & forbidden)

    cover = constrained_vertex_cover(edges, 6, admissible)
    if cover is not None:
        assert is_cover(cover, edges)
        assert len(cover) <= 6
        assert admissible(frozenset(cover))
