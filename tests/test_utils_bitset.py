"""Unit + property tests for bitmask helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import (
    EmptyMaskError,
    bit_count,
    bits_of,
    highest_bit,
    iter_bits,
    lowest_bit,
    mask_below,
    mask_of,
)


class TestBasics:
    def test_mask_of(self):
        assert mask_of([0, 2, 5]) == 0b100101
        assert mask_of([]) == 0

    def test_mask_below(self):
        assert mask_below(0) == 0
        assert mask_below(3) == 0b111

    def test_bits_of_ascending(self):
        assert bits_of(0b100101) == [0, 2, 5]

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0b1011) == 3

    def test_highest_lowest(self):
        assert highest_bit(0b100100) == 5
        assert lowest_bit(0b100100) == 2

    def test_zero_mask_raises_typed_error(self):
        # Regression (PR 7): the zero mask used to return the -1
        # sentinel here while the words backend raised — the "no such
        # bit" case is now one typed ValueError in both representations.
        with pytest.raises(EmptyMaskError):
            highest_bit(0)
        with pytest.raises(EmptyMaskError):
            lowest_bit(0)
        assert issubclass(EmptyMaskError, ValueError)


@given(st.sets(st.integers(min_value=0, max_value=80)))
def test_mask_roundtrip(vertices):
    assert set(bits_of(mask_of(vertices))) == vertices


@given(st.sets(st.integers(min_value=0, max_value=80)))
def test_bit_count_matches_set_size(vertices):
    assert bit_count(mask_of(vertices)) == len(vertices)


@given(
    st.sets(st.integers(min_value=0, max_value=40)),
    st.integers(min_value=0, max_value=41),
)
def test_mask_below_is_id_filter(vertices, i):
    # mask & mask_below(i) implements the paper's [:i] restriction.
    expected = {v for v in vertices if v < i}
    assert set(bits_of(mask_of(vertices) & mask_below(i))) == expected


@given(st.lists(st.integers(min_value=0, max_value=60)))
def test_iter_bits_sorted_unique(vertices):
    out = list(iter_bits(mask_of(vertices)))
    assert out == sorted(set(vertices))
