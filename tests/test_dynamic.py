"""Differential tests for the dynamic-graph subsystem (DESIGN.md §9).

The acceptance contract of ``repro.dynamic``:

* ``apply_delta`` produces exactly the graph a from-scratch
  ``GraphBuilder`` construction would, while *sharing* every untouched
  per-vertex structure with the source graph;
* ``DataArtifacts.apply_delta`` serializes **byte-identically** to a
  cold ``DataArtifacts(new_graph)`` build, and its carried-over lazy
  mask ladders answer exactly what a fresh instance computes;
* ``ContinuousMatcher`` diff streams replay to exactly the full
  re-match result set after every delta.
"""

import pytest

from repro.core.engine import GuPEngine
from repro.dynamic.continuous import ContinuousMatcher, EmbeddingDiff
from repro.dynamic.delta import (
    DeltaError,
    GraphDelta,
    apply_delta,
    delta_from_payload,
    delta_to_payload,
    loads_delta,
    saves_delta,
)
from repro.filtering.artifacts import DataArtifacts, dumps_artifacts
from repro.graph.builder import GraphBuilder, graph_from_adjacency
from repro.graph.io import graph_checksum


def small_graph():
    """A / B / A / C path plus a pendant: exercises several labels."""
    return graph_from_adjacency(
        ["A", "B", "A", "C", "B"], [(0, 1), (1, 2), (2, 3), (3, 4)]
    )


def rebuilt(graph, delta):
    """The delta applied the slow way: re-add everything to a builder."""
    b = GraphBuilder()
    b.add_vertices(graph.labels)
    b.add_vertices(delta.add_vertices)
    removed = set(delta.remove_edges)
    for u, v in graph.edges():
        if (u, v) not in removed:
            b.add_edge(u, v)
    b.add_edges(delta.add_edges)
    return b.build()


class TestDeltaValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(DeltaError, match="self-loop"):
            GraphDelta(add_edges=((1, 1),))

    def test_duplicate_add_rejected(self):
        with pytest.raises(DeltaError, match="duplicate"):
            GraphDelta(add_edges=((0, 1), (1, 0)))

    def test_add_and_remove_same_edge_rejected(self):
        with pytest.raises(DeltaError, match="both added and removed"):
            GraphDelta(add_edges=((0, 1),), remove_edges=((1, 0),))

    def test_unhashable_label_rejected(self):
        with pytest.raises(DeltaError, match="unhashable"):
            GraphDelta(add_vertices=([1, 2],))

    def test_negative_endpoint_rejected(self):
        with pytest.raises(DeltaError, match="negative"):
            GraphDelta(remove_edges=((-1, 2),))

    def test_existing_edge_cannot_be_added(self):
        delta = GraphDelta(add_edges=((0, 1),))
        with pytest.raises(DeltaError, match="already exists"):
            apply_delta(small_graph(), delta)

    def test_missing_edge_cannot_be_removed(self):
        delta = GraphDelta(remove_edges=((0, 2),))
        with pytest.raises(DeltaError, match="does not exist"):
            apply_delta(small_graph(), delta)

    def test_added_edge_to_unknown_vertex_rejected(self):
        delta = GraphDelta(add_edges=((0, 7),))
        with pytest.raises(DeltaError, match="unknown vertex"):
            apply_delta(small_graph(), delta)

    def test_new_vertex_ids_are_addressable(self):
        graph = small_graph()
        delta = GraphDelta(add_vertices=("D",), add_edges=((0, 5),))
        new_graph, _ = apply_delta(graph, delta)
        assert new_graph.has_edge(0, 5)
        assert new_graph.label(5) == "D"


class TestApplyDelta:
    def test_matches_builder_rebuild(self):
        graph = small_graph()
        delta = GraphDelta(
            add_vertices=("A", "D"),
            add_edges=((0, 3), (4, 5), (5, 6)),
            remove_edges=((1, 2), (3, 4)),
        )
        new_graph, summary = apply_delta(graph, delta)
        assert new_graph == rebuilt(graph, delta)
        assert graph_checksum(new_graph) == graph_checksum(rebuilt(graph, delta))
        assert summary.num_vertices_before == 5
        assert summary.num_vertices_after == 7
        assert summary.added_vertices == (5, 6)
        assert set(summary.touched_vertices) == {0, 1, 2, 3, 4, 5, 6}

    def test_untouched_rows_are_shared_objects(self):
        graph = graph_from_adjacency(
            ["A", "B", "A", "C"], [(0, 1), (1, 2), (2, 3)]
        )
        graph.neighbor_label_frequency(0)  # materialize NLF
        delta = GraphDelta(remove_edges=((2, 3),))
        new_graph, summary = apply_delta(graph, delta)
        assert set(summary.touched_vertices) == {2, 3}
        for v in (0, 1):
            assert new_graph._neighbor_sets[v] is graph._neighbor_sets[v]
            assert new_graph._nlf[v] is graph._nlf[v]
        for v in (2, 3):
            assert new_graph._neighbor_sets[v] is not graph._neighbor_sets[v]

    def test_source_graph_is_untouched(self):
        graph = small_graph()
        before = graph_checksum(graph)
        delta = GraphDelta(add_edges=((0, 4),), remove_edges=((0, 1),))
        apply_delta(graph, delta)
        assert graph_checksum(graph) == before
        assert graph.has_edge(0, 1) and not graph.has_edge(0, 4)

    def test_empty_delta_is_equal_graph(self):
        graph = small_graph()
        delta = GraphDelta()
        assert delta.is_empty()
        new_graph, summary = apply_delta(graph, delta)
        assert new_graph == graph
        assert summary.touched_vertices == ()
        assert summary.touched_mask == 0

    def test_masks_partition_roles(self):
        graph = small_graph()
        delta = GraphDelta(
            add_vertices=("D",), add_edges=((0, 3),), remove_edges=((3, 4),)
        )
        _, summary = apply_delta(graph, delta)
        assert summary.addition_mask == (1 << 0) | (1 << 3) | (1 << 5)
        assert summary.removal_mask == (1 << 3) | (1 << 4)
        assert summary.touched_mask == summary.addition_mask | summary.removal_mask


class TestDeltaFormats:
    def test_text_round_trip(self):
        delta = GraphDelta(
            add_vertices=("D", 7),
            add_edges=((0, 5), (1, 6)),
            remove_edges=((0, 1),),
        )
        assert loads_delta(saves_delta(delta)) == delta

    def test_payload_round_trip(self):
        delta = GraphDelta(
            add_vertices=("D",), add_edges=((0, 5),), remove_edges=((0, 1),)
        )
        assert delta_from_payload(delta_to_payload(delta)) == delta

    def test_text_comments_and_errors(self):
        delta = loads_delta("# comment\n\nav A\nae 0 5\nre 1 2\n")
        assert delta.add_vertices == ("A",)
        with pytest.raises(DeltaError, match="line 1"):
            loads_delta("ae 0\n")
        with pytest.raises(DeltaError, match="unknown record"):
            loads_delta("xx 0 1\n")

    def test_payload_shape_errors(self):
        with pytest.raises(DeltaError):
            delta_from_payload(["not", "a", "dict"])
        with pytest.raises(DeltaError, match="unknown delta payload"):
            delta_from_payload({"bogus": []})
        with pytest.raises(DeltaError):
            delta_from_payload({"add_edges": [[1]]})


class TestArtifactsPatch:
    def prime_ladders(self, artifacts, queries):
        for query in queries:
            artifacts.nlf_candidate_masks(query)

    def test_patch_is_byte_identical_to_cold_rebuild(self):
        graph = small_graph()
        artifacts = DataArtifacts(graph)
        delta = GraphDelta(
            add_vertices=("D",),
            add_edges=((0, 3), (4, 5)),
            remove_edges=((1, 2),),
        )
        new_graph, summary = apply_delta(graph, delta)
        patched = artifacts.apply_delta(new_graph, summary)
        cold = DataArtifacts(new_graph)
        assert dumps_artifacts(patched) == dumps_artifacts(cold)

    def test_patch_counts_as_patch_not_build(self):
        graph = small_graph()
        artifacts = DataArtifacts(graph)
        new_graph, summary = apply_delta(
            graph, GraphDelta(add_edges=((0, 4),))
        )
        builds = DataArtifacts.builds_performed
        patches = DataArtifacts.patches_performed
        patched = artifacts.apply_delta(new_graph, summary)
        assert DataArtifacts.builds_performed == builds
        assert DataArtifacts.patches_performed == patches + 1
        assert patched.reuse_report["vertices_touched"] == 2

    def test_untouched_structures_are_reused(self):
        # Two labels, delta confined to label-C vertices: every A/B
        # bucket and adjacency row must be carried over untouched.
        graph = graph_from_adjacency(
            ["A", "B", "A", "C", "C"], [(0, 1), (1, 2), (3, 4)]
        )
        artifacts = DataArtifacts(graph)
        new_graph, summary = apply_delta(
            graph, GraphDelta(remove_edges=((3, 4),))
        )
        patched = artifacts.apply_delta(new_graph, summary)
        assert summary.touched_labels == frozenset({"C"})
        for label in ("A", "B"):
            assert patched.label_buckets[label] is artifacts.label_buckets[label]
        report = patched.reuse_report
        assert report["label_buckets_reused"] == 2
        assert report["label_buckets_rebuilt"] == 1
        assert report["adjacency_rows_reused"] == 3

    def test_lazy_ladders_patched_exactly(self, rng):
        from tests.conftest import make_random_pair

        for _ in range(10):
            query, graph = make_random_pair(rng)
            artifacts = DataArtifacts(graph)
            self.prime_ladders(artifacts, [query])
            edges = list(graph.edges())
            remove = tuple(
                rng.sample(edges, min(2, len(edges)))
            ) if edges else ()
            add = []
            attempts = 0
            while len(add) < 2 and attempts < 50:
                attempts += 1
                u = rng.randrange(graph.num_vertices)
                v = rng.randrange(graph.num_vertices)
                edge = (min(u, v), max(u, v))
                if u != v and not graph.has_edge(u, v) and edge not in add:
                    add.append(edge)
            delta = GraphDelta(
                add_vertices=(rng.randint(0, 2),),
                add_edges=tuple(add),
                remove_edges=remove,
            )
            new_graph, summary = apply_delta(graph, delta)
            patched = artifacts.apply_delta(new_graph, summary)
            fresh = DataArtifacts(new_graph)
            # Carried-over LDF prefix masks and patched NLF threshold
            # masks answer exactly what a cold instance computes.
            for key in list(patched._nlf_count_masks):
                label, count = key
                assert patched.nlf_count_mask(label, count) == \
                    fresh.nlf_count_mask(label, count)
            assert patched.nlf_candidate_masks(query) == \
                fresh.nlf_candidate_masks(query)
            assert patched.ldf_candidates(query) == fresh.ldf_candidates(query)

    def test_new_label_appears_and_orphan_label_kept(self):
        # Delta isolates the only C vertex (degree drops to 0) and adds
        # a brand-new label D: both must round-trip byte-identically.
        graph = graph_from_adjacency(["A", "B", "C"], [(0, 1), (1, 2)])
        artifacts = DataArtifacts(graph)
        delta = GraphDelta(add_vertices=("D",), remove_edges=((1, 2),))
        new_graph, summary = apply_delta(graph, delta)
        patched = artifacts.apply_delta(new_graph, summary)
        cold = DataArtifacts(new_graph)
        assert dumps_artifacts(patched) == dumps_artifacts(cold)
        assert patched.label_bitmaps["D"] == 1 << 3
        assert patched.label_buckets["C"] == ((2,), (0,))


class TestEngineApplyDelta:
    def test_in_place_update_matches_fresh_engine(self):
        data = graph_from_adjacency(
            ["A", "B", "C", "A", "B", "C"],
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)],
        )
        query = graph_from_adjacency(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        engine = GuPEngine(data)
        engine.match(query)  # warm artifacts + invariants
        invariants = engine.invariants
        builds = DataArtifacts.builds_performed

        delta = GraphDelta(add_edges=((3, 5),), remove_edges=((0, 1),))
        summary = engine.apply_delta(delta)
        assert summary.added_edges == ((3, 5),)
        assert engine.invariants is invariants
        assert DataArtifacts.builds_performed == builds, (
            "in-place update must patch, not rebuild"
        )
        assert engine.data.has_edge(3, 5) and not engine.data.has_edge(0, 1)

        fresh = GuPEngine(engine.data)
        assert sorted(engine.match(query).embeddings) == sorted(
            fresh.match(query).embeddings
        ) == [(3, 4, 5)]


class TestContinuousMatcher:
    def triangle_world(self):
        data = graph_from_adjacency(
            ["A", "B", "C", "A", "B", "C"],
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)],
        )
        query = graph_from_adjacency(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        return data, query

    def test_addition_creates_match_removal_retracts(self):
        data, query = self.triangle_world()
        matcher = ContinuousMatcher(data)
        initial = matcher.register("tri", query)
        assert initial == [(0, 1, 2)]

        diffs = matcher.apply(GraphDelta(add_edges=((3, 5),)))
        assert diffs["tri"].added == [(3, 4, 5)]
        assert diffs["tri"].removed == []
        assert matcher.matches("tri") == [(0, 1, 2), (3, 4, 5)]

        diffs = matcher.apply(GraphDelta(remove_edges=((0, 1),)))
        assert diffs["tri"].added == []
        assert diffs["tri"].removed == [(0, 1, 2)]
        assert matcher.matches("tri") == [(3, 4, 5)]
        assert matcher.epoch == 2

    def test_diff_equals_full_rematch(self, rng):
        from tests.conftest import make_random_pair

        checked = 0
        while checked < 6:
            query, data = make_random_pair(rng, max_query=5, max_data=12)
            matcher = ContinuousMatcher(data)
            matcher.register("q", query)
            for _ in range(3):
                edges = list(matcher.graph.edges())
                remove = tuple(rng.sample(edges, min(1, len(edges))))
                add = []
                attempts = 0
                while len(add) < 2 and attempts < 50:
                    attempts += 1
                    u = rng.randrange(matcher.graph.num_vertices)
                    v = rng.randrange(matcher.graph.num_vertices)
                    e = (min(u, v), max(u, v))
                    if (u != v and not matcher.graph.has_edge(u, v)
                            and e not in add and e not in remove):
                        add.append(e)
                matcher.apply(
                    GraphDelta(add_edges=tuple(add), remove_edges=remove)
                )
                full = {
                    tuple(e)
                    for e in GuPEngine(matcher.graph).match(query).embeddings
                }
                assert set(matcher.matches("q")) == full
            checked += 1

    def test_empty_delta_empty_diff(self):
        data, query = self.triangle_world()
        matcher = ContinuousMatcher(data)
        matcher.register("tri", query)
        diffs = matcher.apply(GraphDelta())
        assert diffs["tri"].is_empty()
        assert matcher.matches("tri") == [(0, 1, 2)]

    def test_new_vertex_match_via_added_vertex(self):
        # A query with a pendant C: a freshly added C vertex plus an
        # edge creates matches that must place a vertex on the new id.
        data = graph_from_adjacency(["A", "B"], [(0, 1)])
        query = graph_from_adjacency(["A", "B", "C"], [(0, 1), (1, 2)])
        matcher = ContinuousMatcher(data)
        assert matcher.register("path", query) == []
        diffs = matcher.apply(
            GraphDelta(add_vertices=("C",), add_edges=((1, 2),))
        )
        assert diffs["path"].added == [(0, 1, 2)]

    def test_register_and_unregister(self):
        data, query = self.triangle_world()
        matcher = ContinuousMatcher(data)
        matcher.register("tri", query)
        with pytest.raises(ValueError, match="already registered"):
            matcher.register("tri", query)
        matcher.unregister("tri")
        with pytest.raises(KeyError):
            matcher.unregister("tri")
        assert matcher.names() == []

    def test_counters_track_work(self):
        data, query = self.triangle_world()
        matcher = ContinuousMatcher(data)
        matcher.register("tri", query)
        matcher.apply(GraphDelta(add_edges=((3, 5),)))
        counters = matcher.counters
        assert counters["deltas_applied"] == 1
        assert counters["additions"] == 1
        assert counters["restricted_builds"] >= 1

    def test_diff_object_shape(self):
        diff = EmbeddingDiff(added=[(0, 1)], removed=[])
        assert not diff.is_empty()
        assert EmbeddingDiff().is_empty()
