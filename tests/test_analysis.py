"""Tests for search tracing and the Fig. 3 tree reconstruction.

The paper example's search trees are pinned exactly: the conventional
tree is Fig. 3 (19 extension nodes + root, the X marks in place), and
the guarded tree realizes Example 3.34 (R/NV filtering at M6 and the
backjump that prunes node m12).
"""

import pytest

from repro.analysis import TraceRecorder, render_search_tree, trace_search
from repro.analysis.trace import SearchObserver
from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.workload import paper_example_data, paper_example_query
from tests.conftest import make_random_pair


@pytest.fixture(scope="module")
def graphs():
    return paper_example_query(), paper_example_data()


class TestFig3Baseline:
    def test_tree_matches_fig3(self, graphs):
        q, d = graphs
        tree = trace_search(q, d, GuPConfig.baseline(), reorder=False)
        # Fig. 3: nodes m0 (root) .. m19 -> 20 recursions.
        assert tree.num_recursions() == 20
        assert tree.embeddings == [(1, 4, 7, 10, 0)]
        # The X marks: three injectivity conflicts at u4=v0 and two
        # no-candidate conflicts at u3=v11, plus the final leaf path.
        recorder_conflicts = tree.num_conflicts()
        assert recorder_conflicts == 6  # 3x inj + 2x empty + 1 more inj (m14)

    def test_rendering_mentions_structure(self, graphs):
        q, d = graphs
        text = render_search_tree(q, d, GuPConfig.baseline(), reorder=False)
        assert "u0=v0" in text and "u0=v1" in text
        assert "[FULL EMBEDDING]" in text
        assert "X inj" in text and "X empty" in text


class TestExample334Guarded:
    def test_guards_prune_fig3_shaded_nodes(self, graphs):
        q, d = graphs
        tree = trace_search(q, d, GuPConfig.full(), reorder=False)
        baseline = trace_search(q, d, GuPConfig.baseline(), reorder=False)
        assert tree.embeddings == baseline.embeddings
        assert tree.num_recursions() < baseline.num_recursions()

    def test_m6_filtering(self, graphs):
        """Example 3.34: at M6 = {(u0,v0),(u1,v3)}, v5 is filtered by the
        reservation guard and v6/v7 by nogood guards on vertices."""
        q, d = graphs
        text = render_search_tree(q, d, GuPConfig.full(), reorder=False)
        assert "X R" in text
        assert "X NV" in text
        assert "<backjump>" in text

    def test_backjump_prunes_m12(self, graphs):
        """After M6's deadend (nogood {(u0, v0)}), the u0=v0 node is
        abandoned: u1=v4 (node m12) is never explored under v0."""
        q, d = graphs
        tree = trace_search(q, d, GuPConfig.full(), reorder=False)
        v0_node = next(c for c in tree.root.children if c.vertex == 0)
        explored_u1 = [c.vertex for c in v0_node.children if not c.conflict]
        assert 4 not in explored_u1  # m12 pruned
        assert v0_node.backjumped_after
        assert v0_node.mask == 0b1  # deadend mask {u0} (Example 3.34)


class TestObserverProtocol:
    def test_recorder_event_stream_is_balanced(self, graphs):
        q, d = graphs
        recorder = TraceRecorder()
        gcs = build_gcs(q, d)
        GuPSearch(gcs, observer=recorder).run()
        assert recorder.count("descend") == recorder.count("return")
        assert recorder.count("embedding") == 1

    def test_noop_observer_does_not_change_search(self, rng):
        for _ in range(8):
            q, d = make_random_pair(rng)
            gcs1 = build_gcs(q, d)
            plain = GuPSearch(gcs1)
            r1, _ = plain.run()
            gcs2 = build_gcs(q, d)
            observed = GuPSearch(gcs2, observer=SearchObserver())
            r2, _ = observed.run()
            assert sorted(r1) == sorted(r2)
            assert plain.stats.recursions == observed.stats.recursions

    def test_conflicts_by_kind(self, graphs):
        q, d = graphs
        recorder = TraceRecorder()
        gcs = build_gcs(q, d)
        GuPSearch(gcs, observer=recorder).run()
        kinds = recorder.conflicts_by_kind()
        assert set(kinds) <= {
            "injectivity", "reservation", "nogood_vertex", "no_candidate",
        }


class TestTraceOnRandomInstances:
    def test_tree_recursions_match_stats(self, rng):
        for _ in range(8):
            q, d = make_random_pair(rng)
            recorder = TraceRecorder()
            gcs = build_gcs(q, d)
            search = GuPSearch(gcs, observer=recorder)
            search.run()
            from repro.analysis.tree import build_tree

            tree = build_tree(recorder, gcs.query)
            if not gcs.cs.is_empty() and gcs.query.num_vertices > 0:
                assert tree.num_recursions() == search.stats.recursions
