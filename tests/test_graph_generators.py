"""Unit + property tests for the random graph generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.algorithms import is_connected
from repro.graph.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_connected_graph,
    random_labels,
    random_tree,
)


class TestRandomLabels:
    def test_length_and_range(self):
        labels = random_labels(100, 5, seed=1)
        assert len(labels) == 100
        assert set(labels) <= set(range(5))

    def test_deterministic(self):
        assert random_labels(50, 4, seed=9) == random_labels(50, 4, seed=9)

    def test_skew_concentrates_mass(self):
        skewed = random_labels(3000, 10, seed=3, skew=1.5)
        uniform = random_labels(3000, 10, seed=3, skew=0.0)
        assert skewed.count(0) > uniform.count(0) * 1.5

    def test_rejects_no_labels(self):
        with pytest.raises(ValueError):
            random_labels(5, 0)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_graph(20, 30, seed=2)
        assert g.num_vertices == 20
        assert g.num_edges == 30

    def test_caps_at_complete(self):
        g = erdos_renyi_graph(5, 100, seed=2)
        assert g.num_edges == 10

    def test_deterministic(self):
        assert erdos_renyi_graph(15, 20, 3, seed=7) == erdos_renyi_graph(15, 20, 3, seed=7)


class TestRandomTree:
    def test_tree_shape(self):
        g = random_tree(30, seed=4)
        assert g.num_edges == 29
        assert is_connected(g)


class TestRandomConnected:
    def test_connected_with_extras(self):
        g = random_connected_graph(25, 40, seed=5)
        assert is_connected(g)
        assert g.num_edges == 40

    def test_rejects_too_few_edges(self):
        with pytest.raises(ValueError):
            random_connected_graph(10, 5)


class TestPowerlaw:
    def test_basic_shape(self):
        g = powerlaw_cluster_graph(60, 3, seed=6)
        assert g.num_vertices == 60
        assert is_connected(g)
        # Preferential attachment: the max degree well exceeds the mean.
        assert max(g.degree(v) for v in g.vertices()) > 2 * g.average_degree()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(3, 5)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(40, 2, 0.5, 4, seed=8)
        b = powerlaw_cluster_graph(40, 2, 0.5, 4, seed=8)
        assert a == b


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    extra=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_random_connected_is_always_connected(n, extra, seed):
    g = random_connected_graph(n, n - 1 + extra, num_labels=3, seed=seed)
    assert is_connected(g)
    assert g.num_vertices == n


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=25),
    m=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**30),
)
def test_erdos_renyi_respects_edge_budget(n, m, seed):
    g = erdos_renyi_graph(n, m, num_labels=2, seed=seed)
    assert g.num_edges == min(m, n * (n - 1) // 2)
