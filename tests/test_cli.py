"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io import load_graph, save_graph
from repro.workload.paper_example import paper_example_data, paper_example_query


@pytest.fixture
def graph_files(tmp_path):
    qpath = tmp_path / "q.graph"
    dpath = tmp_path / "d.graph"
    save_graph(paper_example_query(), qpath)
    save_graph(paper_example_data(), dpath)
    return str(qpath), str(dpath)


class TestMatch:
    def test_basic(self, graph_files, capsys):
        q, d = graph_files
        assert main(["match", q, d]) == 0
        out = capsys.readouterr().out
        assert "embeddings:  1" in out
        assert "u0->v1" in out

    @pytest.mark.parametrize("method", ["DAF", "GQL-G", "RM", "VF2"])
    def test_methods(self, method, graph_files, capsys):
        q, d = graph_files
        assert main(["match", q, d, "--method", method]) == 0
        assert "embeddings:  1" in capsys.readouterr().out

    def test_count_only(self, graph_files, capsys):
        q, d = graph_files
        assert main(["match", q, d, "--count-only"]) == 0
        out = capsys.readouterr().out
        assert "embeddings:  1" in out
        assert "u0->" not in out

    def test_limit(self, graph_files, capsys):
        q, d = graph_files
        assert main(["match", q, d, "--limit", "1"]) == 0

    def test_recursion_limit(self, graph_files, capsys):
        q, d = graph_files
        assert main(["match", q, d, "--recursion-limit", "100000"]) == 0


class TestDataset:
    def test_writes_graph(self, tmp_path, capsys):
        out = tmp_path / "yeast.graph"
        assert main([
            "dataset", "yeast", "--scale", "0.2", "--out", str(out)
        ]) == 0
        g = load_graph(out)
        assert g.num_vertices > 0
        assert "wrote" in capsys.readouterr().out


class TestQuerygen:
    def test_walk(self, tmp_path, capsys):
        data_path = tmp_path / "d.graph"
        main(["dataset", "yeast", "--scale", "0.3", "--out", str(data_path)])
        prefix = str(tmp_path / "q")
        assert main([
            "querygen", str(data_path), "--size", "5", "--count", "2",
            "--out-prefix", prefix,
        ]) == 0
        q0 = load_graph(prefix + "0.graph")
        q1 = load_graph(prefix + "1.graph")
        assert q0.num_vertices == q1.num_vertices == 5

    def test_cycle(self, tmp_path, capsys):
        data_path = tmp_path / "d.graph"
        main(["dataset", "wordnet", "--scale", "0.3", "--out", str(data_path)])
        prefix = str(tmp_path / "c")
        rc = main([
            "querygen", str(data_path), "--kind", "cycle", "--size", "6",
            "--out-prefix", prefix,
        ])
        assert rc == 0
        q = load_graph(prefix + "0.graph")
        assert all(q.degree(v) == 2 for v in q.vertices())

    def test_hard(self, tmp_path, capsys):
        data_path = tmp_path / "d.graph"
        main(["dataset", "wordnet", "--scale", "0.25", "--out", str(data_path)])
        prefix = str(tmp_path / "h")
        assert main([
            "querygen", str(data_path), "--kind", "hard", "--size", "8",
            "--count", "1", "--out-prefix", prefix,
        ]) == 0
        assert load_graph(prefix + "0.graph").num_vertices >= 4


class TestBatch:
    def test_empty_glob_fails_loudly(self, graph_files, tmp_path, capsys):
        """A workload glob matching nothing must not silently succeed."""
        _, d = graph_files
        rc = main(["batch", str(tmp_path / "nope*.graph"), d])
        assert rc != 0
        assert "no query files match" in capsys.readouterr().err

    def test_missing_literal_path_fails(self, graph_files, tmp_path, capsys):
        _, d = graph_files
        rc = main(["batch", str(tmp_path / "absent.graph"), d])
        assert rc != 0
        assert "no query files match" in capsys.readouterr().err

    def test_single_file_still_works(self, graph_files, capsys):
        q, d = graph_files
        assert main(["batch", q, d]) == 0
        assert "total embeddings: 1" in capsys.readouterr().out

    def test_literal_path_with_glob_metachars(self, graph_files, tmp_path,
                                              capsys):
        """A file literally named like a glob must still load."""
        import shutil

        q, d = graph_files
        odd = tmp_path / "q[1].graph"
        shutil.copy(q, odd)
        assert main(["batch", str(odd), d]) == 0
        assert "total embeddings: 1" in capsys.readouterr().out


class TestCatalogCli:
    def test_add_list_warm(self, graph_files, tmp_path, capsys):
        _, d = graph_files
        root = str(tmp_path / "cat")
        assert main(["catalog", "add", "paper", d, "--root", root]) == 0
        assert main(["catalog", "list", "--root", root]) == 0
        assert main(["catalog", "warm", "paper", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "added paper" in out
        assert "paper: ok" in out

    def test_add_missing_file_fails(self, tmp_path, capsys):
        rc = main([
            "catalog", "add", "x", str(tmp_path / "absent.graph"),
            "--root", str(tmp_path / "cat"),
        ])
        assert rc != 0
        assert "error:" in capsys.readouterr().err

    def test_warm_unknown_entry_fails(self, tmp_path, capsys):
        rc = main([
            "catalog", "warm", "ghost", "--root", str(tmp_path / "cat")
        ])
        assert rc != 0
        assert "error:" in capsys.readouterr().err


class TestInspect:
    def test_reports_gcs(self, graph_files, capsys):
        q, d = graph_files
        assert main(["inspect", q, d]) == 0
        out = capsys.readouterr().out
        assert "candidate space" in out
        assert "reservation guards" in out
        assert "2-core" in out


class TestBench:
    def test_quick_comparison(self, capsys):
        assert main([
            "bench", "--dataset", "yeast", "--size", "6", "--count", "2",
            "--methods", "GuP", "DAF", "--recursion-limit", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "GuP" in out and "DAF" in out
        assert "Recursions" in out

    def test_hard_mining_mode(self, capsys):
        assert main([
            "bench", "--dataset", "yeast", "--size", "6", "--count", "1",
            "--hard", "--methods", "GuP", "--recursion-limit", "2000",
        ]) == 0
        assert "hard x1" in capsys.readouterr().out


class TestMethods:
    def test_lists_all(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("GuP", "DAF", "GQL-G", "GQL-R", "RM", "VF2"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self, graph_files):
        q, d = graph_files
        with pytest.raises(SystemExit):
            main(["match", q, d, "--method", "nope"])
