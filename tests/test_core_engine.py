"""Unit tests for the GuP engine facade and Algorithm 2 behaviors."""

import pytest

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine, count_embeddings, match
from repro.graph.builder import GraphBuilder, cycle_graph, path_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.matching.verify import assert_all_embeddings_valid
from repro.workload.paper_example import PAPER_FULL_EMBEDDING


class TestBasicMatching:
    def test_paper_example(self, paper_query, paper_data):
        result = match(paper_query, paper_data)
        assert result.embeddings == [PAPER_FULL_EMBEDDING]
        assert result.num_embeddings == 1
        assert result.complete

    def test_triangle(self, triangle_query, two_triangles_data):
        result = match(triangle_query, two_triangles_data)
        assert sorted(result.embeddings) == [(0, 1, 2), (3, 4, 5)]

    def test_embeddings_in_original_numbering(self, rng):
        from tests.conftest import make_random_pair

        for _ in range(10):
            q, d = make_random_pair(rng)
            result = match(q, d)
            assert_all_embeddings_valid(q, d, result.embeddings)

    def test_no_match_different_labels(self):
        q = path_graph("AB")
        d = path_graph("CC")
        result = match(q, d)
        assert result.num_embeddings == 0
        assert result.complete

    def test_empty_query(self, two_triangles_data):
        b = GraphBuilder()
        result = match(b.build(), two_triangles_data)
        assert result.embeddings == [()]
        assert result.num_embeddings == 1

    def test_single_vertex_query(self, two_triangles_data):
        b = GraphBuilder()
        b.add_vertex("A")
        result = match(b.build(), two_triangles_data)
        assert sorted(result.embeddings) == [(0,), (3,)]

    def test_automorphisms_counted(self):
        # A label-free triangle in a triangle: 3! = 6 embeddings.
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        assert match(q, d).num_embeddings == 6


class TestEngineReuse:
    def test_engine_is_stateless_across_queries(self, two_triangles_data, triangle_query):
        engine = GuPEngine(two_triangles_data)
        first = engine.match(triangle_query)
        second = engine.match(triangle_query)
        assert first.embeddings == second.embeddings

    def test_prebuilt_gcs(self, two_triangles_data, triangle_query):
        engine = GuPEngine(two_triangles_data)
        gcs = engine.build(triangle_query)
        result = engine.match(triangle_query, gcs=gcs)
        assert result.num_embeddings == 2


class TestLimits:
    def test_embedding_limit(self):
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        result = match(q, d, limits=SearchLimits(max_embeddings=2))
        assert result.num_embeddings == 2
        assert result.status is TerminationStatus.EMBEDDING_LIMIT

    def test_count_embeddings_does_not_collect(self):
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        assert count_embeddings(q, d) == 6

    def test_count_embeddings_honors_max_recursions(self):
        """Regression: the rebuilt counting limits used to drop
        ``max_recursions``, silently ignoring virtual-time budgets."""
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        limits = SearchLimits(max_recursions=2)
        truncated = count_embeddings(q, d, limits=limits)
        reference = match(
            q, d, limits=SearchLimits(max_recursions=2, collect=False)
        )
        assert reference.status is TerminationStatus.TIMEOUT
        assert truncated == reference.num_embeddings
        assert truncated < 6  # the budget genuinely cut the count

    def test_zero_time_limit_on_large_search(self):
        from repro.graph.generators import random_connected_graph
        from repro.workload.querygen import generate_query

        data = random_connected_graph(40, 300, num_labels=1, seed=3)
        query = generate_query(data, 8, "dense", seed=4)
        result = match(
            query, data, limits=SearchLimits(time_limit=0.0, collect=False)
        )
        assert result.status is TerminationStatus.TIMEOUT


class TestStatsPlumbing:
    def test_counters_populated(self, paper_query, paper_data):
        result = match(paper_query, paper_data)
        assert result.stats.recursions > 0
        assert result.stats.candidate_vertices > 0
        assert result.stats.candidate_edges > 0
        assert result.preprocessing_seconds >= 0

    def test_guards_record_nogoods_on_hard_query(self):
        # Satisfiable cyclic queries with deadend-rich searches.
        from repro.graph.generators import powerlaw_cluster_graph
        from repro.workload.querygen import generate_query

        recorded = 0
        for seed in range(8):
            d = powerlaw_cluster_graph(60, 3, 0.35, num_labels=4, seed=seed)
            q = generate_query(d, 10, "dense", seed=seed)
            recorded += match(q, d).stats.nogoods_recorded_vertex
        assert recorded > 0

    def test_method_name(self, paper_query, paper_data):
        assert match(paper_query, paper_data).method == "GuP"
