"""Differential proof: the bitmap GCS builder is byte-identical to the seed.

The dense mask-domain build pipeline (:mod:`repro.filtering.masks`,
``GuPConfig.build_backend = "bitmap"``) and the seed set/dict pipeline
(``"set"``) must produce the *same* guarded candidate space — candidate
lists, candidate-edge lists and bitmaps, reservations, two-core — and
hence identical embeddings, statistics, and termination status.  This
is what licenses ``benchmarks/bench_buildpath.py`` to compare their
wall clocks as the same construction on two representations.

Covered here:

* a (filter x ordering x reservation-limit x guard-config) grid on
  random instances;
* a Hypothesis differential for ``dag_graph_dp`` vs its mask twin —
  same fixpoint, *including* ``max_rounds``-truncated (pre-fixpoint)
  runs;
* fig6-style workload identity on a scaled wordnet;
* the engine's :class:`~repro.core.gcs.BuildInvariantCache`: zero
  recomputes (order, DAG, two-core) on warm repeats, including through
  the service catalog's warm-engine path.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine, match
from repro.core.gcs import build_gcs
from repro.filtering.artifacts import DataArtifacts
from repro.filtering.dagdp import dag_graph_dp
from repro.filtering.masks import MaskView, dag_graph_dp_masks
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.matching.limits import SearchLimits
from repro.utils.bitset import bits_of


def _instances(seed, count, max_q=7, max_d=24, max_labels=3):
    rng = random.Random(seed)
    for _ in range(count):
        nq = rng.randint(2, max_q)
        nd = rng.randint(5, max_d)
        labels = rng.randint(1, max_labels)
        query = random_connected_graph(
            nq, nq - 1 + rng.randint(0, 5), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        data = erdos_renyi_graph(
            nd, rng.randint(nd, nd * 3), num_labels=labels,
            seed=rng.randint(0, 10**9),
        )
        yield query, data


def assert_gcs_identical(query, data, config):
    """Both builders, full structural comparison down to the bitmaps."""
    bitmap = build_gcs(query, data, config)
    listed = build_gcs(
        query, data, dataclasses.replace(config, build_backend="set")
    )
    assert bitmap.order == listed.order
    assert bitmap.query == listed.query
    assert bitmap.cs.candidates == listed.cs.candidates
    assert bitmap.cs.positions == listed.cs.positions
    assert bitmap.cs._edge_lists == listed.cs._edge_lists
    assert bitmap.cs._edge_bitmaps == listed.cs._edge_bitmaps
    assert bitmap.cs.num_candidate_edges == listed.cs.num_candidate_edges
    assert bitmap.cs._inverse == listed.cs._inverse
    assert bitmap.reservations == listed.reservations
    assert bitmap.two_core == listed.two_core
    # The mask-built CS additionally carries the inverse bitmasks.
    assert bitmap.cs.inverse_masks is not None
    assert listed.cs.inverse_masks is None
    for v, us in bitmap.cs._inverse.items():
        assert tuple(bits_of(bitmap.cs.inverse_masks[v])) == us


def assert_match_identical(query, data, config, limits=None):
    bitmap = match(query, data, config=config, limits=limits)
    listed = match(
        query,
        data,
        config=dataclasses.replace(config, build_backend="set"),
        limits=limits,
    )
    assert bitmap.embeddings == listed.embeddings
    assert bitmap.num_embeddings == listed.num_embeddings
    assert bitmap.status == listed.status
    assert dataclasses.asdict(bitmap.stats) == dataclasses.asdict(listed.stats)


@pytest.mark.parametrize("method", ["ldf", "nlf", "nlf2", "dagdp", "gql"])
def test_filter_methods_identical(method):
    for query, data in _instances(seed=hash(method) % 1000, count=6):
        assert_gcs_identical(query, data, GuPConfig(filter_method=method))


@pytest.mark.parametrize("ordering", ["vc", "gql", "ri"])
def test_orderings_identical(ordering):
    """MaskView-fed orderings pick the same orders as list-fed ones."""
    for query, data in _instances(seed=len(ordering) * 31, count=6):
        assert_gcs_identical(query, data, GuPConfig(ordering=ordering))


@pytest.mark.parametrize("limit", [0, 1, 2, 3, None])
def test_reservation_limits_identical(limit):
    """Incl. r=None (unbounded): covers > 3 take the matching fallback."""
    for query, data in _instances(seed=(limit or 99) * 7, count=6):
        assert_gcs_identical(
            query, data, GuPConfig(reservation_limit=limit)
        )


def test_guard_configs_and_search_identical():
    """Final results across guard ablations, caps, both search backends."""
    rng = random.Random(20260730)
    for t, (query, data) in enumerate(_instances(seed=5150, count=24, max_q=8)):
        config = GuPConfig(
            use_reservation=t % 2 == 0,
            use_nogood_vertex=t % 3 != 0,
            use_nogood_edge=t % 4 != 0,
            use_backjumping=t % 2 == 1,
            ne_two_core_only=t % 5 != 0,
            candidate_backend="list" if t % 6 == 0 else "bitmap",
            break_symmetry=(t % 7 == 0),
        )
        limits = SearchLimits(
            max_embeddings=rng.choice([None, 1, 5, 50]),
            max_recursions=rng.choice([None, 25, 400]),
        )
        assert_match_identical(query, data, config, limits=limits)


def test_empty_and_degenerate_queries():
    from repro.graph.graph import Graph

    data = erdos_renyi_graph(10, 15, num_labels=2, seed=3)
    single = Graph([data.label(0)], [[]])
    assert_gcs_identical(single, data, GuPConfig())
    empty_data = Graph([], [])
    assert_match_identical(single, empty_data, GuPConfig())


def test_benchmark_workload_identical():
    """Fig6-style wordnet workload, caps hitting mid-search."""
    from repro.workload.datasets import load_dataset
    from repro.workload.querygen import QuerySetSpec, generate_query_set

    data = load_dataset("wordnet", scale=0.2, seed=7)
    queries = generate_query_set(
        data, QuerySetSpec(8, "sparse"), count=3, seed=11
    )
    limits = SearchLimits(max_embeddings=500, max_recursions=4000)
    for query in queries:
        assert_gcs_identical(query, data, GuPConfig())
        assert_match_identical(query, data, GuPConfig(), limits=limits)


# ----------------------------------------------------------------------
# Satellite: Hypothesis differential for the DAG-DP worklist
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    max_rounds=st.integers(min_value=1, max_value=4),
)
def test_dagdp_masks_reach_same_fixpoint(seed, max_rounds):
    """Set vs. bitmap DAG-graph DP on random pairs, incl. truncated runs.

    ``max_rounds=1`` almost always stops *before* the fixpoint, so this
    pins the sweep schedule itself (the worklist skip must be a no-op),
    not just the limit behavior.
    """
    rng = random.Random(seed)
    nq = rng.randint(2, 7)
    nd = rng.randint(5, 20)
    labels = rng.randint(1, 3)
    query = random_connected_graph(
        nq, nq - 1 + rng.randint(0, 5), num_labels=labels,
        seed=rng.randint(0, 10**9),
    )
    data = erdos_renyi_graph(
        nd, rng.randint(nd, nd * 3), num_labels=labels,
        seed=rng.randint(0, 10**9),
    )
    artifacts = DataArtifacts(data)
    base_masks = artifacts.nlf_candidate_masks(query)
    base_lists = artifacts.nlf_candidates(query)
    assert [bits_of(m) for m in base_masks] == base_lists

    got = dag_graph_dp_masks(
        query, artifacts.adjacency_bitmaps, base_masks, max_rounds=max_rounds
    )
    want = dag_graph_dp(query, data, base=base_lists, max_rounds=max_rounds)
    assert [bits_of(m) for m in got] == want


# ----------------------------------------------------------------------
# Satellite: build-invariant memoization
# ----------------------------------------------------------------------


class TestBuildInvariantCache:
    def test_warm_repeat_recomputes_nothing(self):
        rng = random.Random(42)
        query, data = next(_instances(seed=8, count=1))
        for backend in ("bitmap", "set"):
            engine = GuPEngine(data, GuPConfig(build_backend=backend))
            first = engine.build(query)
            after_first = engine.invariants.recomputes
            assert after_first > 0
            hits_before = engine.invariants.hits
            again = engine.build(query)
            assert engine.invariants.recomputes == after_first
            assert engine.invariants.hits > hits_before
            assert again.cs.candidates == first.cs.candidates
            assert again.reservations == first.reservations
            assert again.two_core == first.two_core

    def test_distinct_queries_recompute(self):
        (q1, data), (q2, _) = list(_instances(seed=77, count=2, max_d=12))
        engine = GuPEngine(data)
        engine.build(q1)
        n = engine.invariants.recomputes
        engine.build(q2)
        assert engine.invariants.recomputes > n

    def test_match_and_results_unaffected(self):
        query, data = next(_instances(seed=31, count=1))
        engine = GuPEngine(data)
        a = engine.match(query)
        b = engine.match(query)  # warm: order/DAG/two-core all cached
        assert a.embeddings == b.embeddings
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)

    def test_mask_view_is_a_faithful_sequence(self):
        view = MaskView(0b1010010)
        assert len(view) == 3
        assert list(view) == [1, 4, 6]
        assert view[1] == 4
        assert 4 in view and 0 not in view and -1 not in view

    def test_service_warm_path_zero_recomputes(self, tmp_path):
        """Catalog-resident engines do zero invariant recomputes on the
        warm path — the service-side claim of the satellite task."""
        from repro.service.catalog import GraphCatalog

        query, data = next(_instances(seed=13, count=1, max_d=20))
        catalog = GraphCatalog(tmp_path / "cat")
        catalog.add("g", data)
        engine = catalog.engine("g")
        cold = engine.match(query, limits=SearchLimits(max_embeddings=100))
        warm_baseline = engine.invariants.recomputes
        assert warm_baseline > 0
        warm = engine.match(query, limits=SearchLimits(max_embeddings=100))
        assert engine.invariants.recomputes == warm_baseline, (
            "warm service path must not recompute build invariants"
        )
        assert warm.embeddings == cold.embeddings
