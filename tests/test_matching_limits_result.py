"""Unit tests for SearchLimits, SearchStats, MatchResult."""

from repro.matching.limits import SearchLimits, UNLIMITED
from repro.matching.result import MatchResult, SearchStats, TerminationStatus


class TestLimits:
    def test_unlimited(self):
        assert UNLIMITED.max_embeddings is None
        assert not UNLIMITED.embeddings_reached(10**9)

    def test_embedding_cap(self):
        limits = SearchLimits(max_embeddings=5)
        assert not limits.embeddings_reached(4)
        assert limits.embeddings_reached(5)
        assert limits.embeddings_reached(6)

    def test_deadline_factory(self):
        d = SearchLimits(time_limit=None).make_deadline()
        assert not d.check_now()


class TestStats:
    def test_guard_prune_accounting(self):
        s = SearchStats()
        s.local_candidates_seen = 100
        s.pruned_reservation = 5
        s.pruned_nogood_vertex = 10
        s.pruned_nogood_edge = 5
        s.pruned_injectivity = 7  # not a guard prune
        assert s.pruned_by_guards() == 20
        assert s.guard_prune_fraction() == 0.2

    def test_guard_fraction_zero_when_no_candidates(self):
        assert SearchStats().guard_prune_fraction() == 0.0

    def test_merge(self):
        a = SearchStats(recursions=3, embeddings_found=1)
        b = SearchStats(recursions=4, futile_recursions=2)
        a.merge(b)
        assert a.recursions == 7
        assert a.futile_recursions == 2
        assert a.embeddings_found == 1


class TestResult:
    def _result(self, status):
        return MatchResult(
            embeddings=[(0, 1)],
            num_embeddings=1,
            status=status,
            elapsed_seconds=0.5,
            preprocessing_seconds=0.25,
            method="X",
        )

    def test_complete_flag(self):
        assert self._result(TerminationStatus.COMPLETE).complete
        assert not self._result(TerminationStatus.TIMEOUT).complete

    def test_timeout_flag(self):
        assert self._result(TerminationStatus.TIMEOUT).timed_out

    def test_total_seconds(self):
        assert self._result(TerminationStatus.COMPLETE).total_seconds == 0.75

    def test_embedding_set(self):
        assert self._result(TerminationStatus.COMPLETE).embedding_set() == {(0, 1)}

    def test_repr(self):
        assert "method='X'" in repr(self._result(TerminationStatus.COMPLETE))
