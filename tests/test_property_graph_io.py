"""Property tests: graph serialization and structural invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.algorithms import core_numbers, two_core_edges
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.graph.io import loads_graph, saves_graph


def _random_graph(seed, n, m, labels):
    return erdos_renyi_graph(n, m, num_labels=labels, seed=seed)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=0, max_value=30),
    m=st.integers(min_value=0, max_value=60),
    labels=st.integers(min_value=1, max_value=5),
)
def test_graph_format_roundtrip(seed, n, m, labels):
    graph = _random_graph(seed, n, m, labels)
    assert loads_graph(saves_graph(graph), strict=True) == graph


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=1, max_value=25),
    m=st.integers(min_value=0, max_value=50),
)
def test_handshake_lemma(seed, n, m):
    graph = _random_graph(seed, n, m, 2)
    assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=1, max_value=25),
    m=st.integers(min_value=0, max_value=50),
)
def test_core_numbers_bounded_by_degree(seed, n, m):
    graph = _random_graph(seed, n, m, 2)
    cores = core_numbers(graph)
    for v in graph.vertices():
        assert 0 <= cores[v] <= graph.degree(v)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=2, max_value=20),
    extra=st.integers(min_value=0, max_value=20),
)
def test_two_core_edges_have_min_degree_two(seed, n, extra):
    graph = random_connected_graph(n, n - 1 + extra, num_labels=2, seed=seed)
    core_edges = two_core_edges(graph)
    vertices_in_core = {v for e in core_edges for v in e}
    # Within the 2-core subgraph, every vertex touches >= 2 core edges.
    for v in vertices_in_core:
        incident = sum(1 for e in core_edges if v in e)
        assert incident >= 2


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    n=st.integers(min_value=1, max_value=15),
    m=st.integers(min_value=0, max_value=30),
)
def test_relabeled_preserves_degree_multiset(seed, n, m):
    graph = _random_graph(seed, n, m, 3)
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    relabeled = graph.relabeled(perm)
    assert sorted(relabeled.degree_sequence()) == sorted(graph.degree_sequence())
    assert sorted(relabeled.labels) == sorted(graph.labels)
