"""Property tests for nogood guards on edges (Definition 3.16).

Mirrors the NV soundness test: every recorded NE guard, materialized
against the embedding at record time, plus its two endpoint
assignments, must be a nogood — no full embedding (from the oracle)
may contain all of those assignments.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.vf2 import Vf2Matcher
from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.core.nogood import NogoodStore
from repro.graph.generators import erdos_renyi_graph, random_connected_graph

ORACLE = Vf2Matcher()


class EdgeTracingStore(NogoodStore):
    """Records every NE nogood with the embedding context at record time."""

    def __init__(self):
        super().__init__()
        self.snapshots = []
        self.embedding_ref = None

    def record_edge_nogood(self, i, v, j, v2, dom_mask, anc, embedding):
        assignments = [
            (b, embedding[b])
            for b in range(dom_mask.bit_length())
            if dom_mask >> b & 1
        ]
        self.snapshots.append((i, v, j, v2, tuple(assignments)))
        super().record_edge_nogood(i, v, j, v2, dom_mask, anc, embedding)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**30),
    nq=st.integers(min_value=3, max_value=6),
    nd=st.integers(min_value=6, max_value=14),
    labels=st.integers(min_value=1, max_value=2),
    extra_q=st.integers(min_value=2, max_value=6),
    edge_factor=st.floats(min_value=0.8, max_value=2.2),
)
def test_recorded_edge_nogoods_are_nogoods(
    seed, nq, nd, labels, extra_q, edge_factor
):
    query = random_connected_graph(
        nq, nq - 1 + extra_q, num_labels=labels, seed=seed
    )
    data = erdos_renyi_graph(
        nd, int(nd * edge_factor), num_labels=labels, seed=seed + 1
    )
    gcs = build_gcs(query, data, GuPConfig(ne_two_core_only=False))

    store = EdgeTracingStore()
    search = GuPSearch(
        gcs, config=GuPConfig(ne_two_core_only=False), nogoods=store
    )
    store.embedding_ref = search._embedding
    search.run()

    # Oracle full embeddings in the GCS's (reordered) numbering.
    full = [tuple(e) for e in ORACLE.match(gcs.query, data).embeddings]

    for i, v, j, v2, assignments in store.snapshots:
        # Definition 3.16: NE ∪ {(u_i, v), (u_j, v2)} is a nogood.
        complete = list(assignments) + [(i, v), (j, v2)]
        for emb in full:
            assert not all(emb[q] == w for q, w in complete), (
                f"recorded NE nogood {complete} appears in {emb}"
            )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_edge_guard_counts_are_consistent(seed):
    rng = random.Random(seed)
    nq = rng.randint(3, 6)
    query = random_connected_graph(
        nq, nq - 1 + rng.randint(1, 4), num_labels=2, seed=seed
    )
    data = erdos_renyi_graph(rng.randint(6, 14), rng.randint(8, 24),
                             num_labels=2, seed=seed + 1)
    gcs = build_gcs(query, data)
    search = GuPSearch(gcs)
    search.run()
    store = search._nogoods
    # Recording counters never undercount the stored guards.
    assert store.recorded_edge >= store.num_edge_guards
    assert store.recorded_vertex >= store.num_vertex_guards
    assert search.stats.nogoods_recorded_edge == store.recorded_edge
