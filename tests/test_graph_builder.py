"""Unit tests for GraphBuilder and the shape helpers."""

import pytest

from repro.graph.builder import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    graph_from_adjacency,
    path_graph,
    star_graph,
)


class TestBuilder:
    def test_add_vertex_returns_ids(self):
        b = GraphBuilder()
        assert b.add_vertex("A") == 0
        assert b.add_vertex("B") == 1

    def test_add_vertices(self):
        b = GraphBuilder()
        assert b.add_vertices("ABC") == [0, 1, 2]

    def test_add_edge_dedup(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        assert b.add_edge(0, 1) is True
        assert b.add_edge(1, 0) is False
        assert b.num_edges == 1

    def test_add_edges_counts_new(self):
        b = GraphBuilder()
        b.add_vertices("ABC")
        assert b.add_edges([(0, 1), (1, 0), (1, 2)]) == 2

    def test_rejects_self_loop(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        with pytest.raises(ValueError, match="self-loop"):
            b.add_edge(1, 1)

    def test_rejects_unknown_vertex(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        with pytest.raises(ValueError, match="unknown vertex"):
            b.add_edge(0, 5)

    def test_rejects_unhashable_label(self):
        b = GraphBuilder()
        with pytest.raises(TypeError):
            b.add_vertex([1, 2])

    def test_introspection(self):
        b = GraphBuilder()
        b.add_vertices("ABC")
        b.add_edge(0, 1)
        assert b.num_vertices == 3
        assert b.has_edge(0, 1) and b.has_edge(1, 0)
        assert not b.has_edge(0, 2)
        assert b.degree(1) == 1
        assert b.neighbors(1) == (0,)

    def test_build_freezes(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        b.add_edge(0, 1)
        g = b.build()
        b.add_vertex("C")  # must not affect the built graph
        assert g.num_vertices == 2


class TestShapeHelpers:
    def test_complete(self):
        g = complete_graph("ABCD")
        assert g.num_edges == 6
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_path(self):
        g = path_graph("ABCD")
        assert g.num_edges == 3
        assert g.degree(0) == g.degree(3) == 1

    def test_cycle(self):
        g = cycle_graph("ABCD")
        assert g.num_edges == 4
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_rejects_small(self):
        with pytest.raises(ValueError):
            cycle_graph("AB")

    def test_star(self):
        g = star_graph("C", "AAA")
        assert g.degree(0) == 3
        assert g.num_edges == 3
        assert g.label(0) == "C"

    def test_graph_from_adjacency(self):
        g = graph_from_adjacency("AB", [(0, 1)])
        assert g.num_edges == 1
        assert g.labels == ("A", "B")
