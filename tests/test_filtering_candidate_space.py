"""Unit + property tests for the CandidateSpace structure."""

import pytest

from repro.baselines.vf2 import enumerate_embeddings_bruteforce
from repro.filtering.candidate_space import (
    CandidateSpace,
    build_candidate_space,
)
from repro.filtering.nlf import nlf_candidates
from repro.graph.builder import GraphBuilder, cycle_graph
from tests.conftest import make_random_pair


class TestConstruction:
    def test_requires_one_list_per_vertex(self, paper_query, paper_data):
        with pytest.raises(ValueError):
            CandidateSpace(paper_query, paper_data, [[0]])

    def test_candidates_sorted_frozen(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        for lst, fset in zip(cs.candidates, cs.candidate_sets):
            assert list(lst) == sorted(lst)
            assert set(lst) == fset

    def test_candidate_edges_both_directions(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        # u2-u3 edge: v7's D candidates and back.
        assert cs.adjacent_candidates(2, 7, 3) == (10,)
        assert cs.adjacent_candidates(3, 10, 2) == (7,)

    def test_adjacent_candidates_subset_of_candidates(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng)
            cs = build_candidate_space(q, d, method="nlf")
            for i, j in q.edges():
                for v in cs.candidates[i]:
                    adj = cs.adjacent_candidates(i, v, j)
                    assert set(adj) <= cs.candidate_sets[j]
                    for w in adj:
                        assert d.has_edge(v, w)

    def test_inverse_index(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        assert cs.inverse_candidates(0) == (0, 4)   # v0 in C(u0), C(u4)
        assert cs.inverse_candidates(13) == (4,)
        assert cs.inverse_candidates_below(0, 3) == (0,)
        assert cs.inverse_candidates_below(13, 2) == ()

    def test_counts(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        assert cs.total_candidates() == 2 + 3 + 4 + 4 + 3
        assert cs.num_candidate_edges > 0
        assert not cs.is_empty()

    def test_is_empty(self, paper_query, paper_data):
        candidates = [[] for _ in paper_query.vertices()]
        cs = CandidateSpace(paper_query, paper_data, candidates)
        assert cs.is_empty()


class TestBuildPipeline:
    @pytest.mark.parametrize("method", ["ldf", "nlf", "dagdp", "gql"])
    def test_all_filters_sound(self, method, rng):
        for _ in range(8):
            q, d = make_random_pair(rng)
            cs = build_candidate_space(q, d, method=method)
            for emb in enumerate_embeddings_bruteforce(q, d):
                for i, v in enumerate(emb):
                    assert v in cs.candidate_sets[i]

    def test_unknown_filter(self, paper_query, paper_data):
        with pytest.raises(ValueError, match="unknown filter"):
            build_candidate_space(paper_query, paper_data, method="nope")

    def test_consistency_prune_closes_adjacency(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng)
            cs = build_candidate_space(q, d, method="ldf")
            for i in q.vertices():
                for v in cs.candidates[i]:
                    for j in q.neighbors(i):
                        assert cs.adjacent_candidates(i, v, j), (
                            f"candidate ({i},{v}) dangling towards u{j}"
                        )
