"""Tests for the distance-2 neighborhood label filter."""

import pytest

from repro.baselines.vf2 import enumerate_embeddings_bruteforce
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.filtering.candidate_space import build_candidate_space
from repro.filtering.nlf import nlf_candidates
from repro.filtering.nlf2 import _two_hop_label_counts, nlf2_candidates
from repro.graph.builder import GraphBuilder, path_graph
from tests.conftest import make_random_pair


class TestTwoHopTables:
    def test_path(self):
        g = path_graph("ABC")
        tables = _two_hop_label_counts(g)
        # Vertex 0 reaches 1 (B) and 2 (C) within two hops.
        assert tables[0] == {"B": 1, "C": 1}
        assert tables[1] == {"A": 1, "C": 1}

    def test_excludes_self(self):
        g = path_graph("ABA")
        tables = _two_hop_label_counts(g)
        assert tables[0] == {"B": 1, "A": 1}  # the far A, not itself


class TestNlf2:
    def test_tightens_nlf(self):
        # u needs a B at distance 2; v1 has none.
        qb = GraphBuilder()
        qb.add_vertices(["A", "C", "B"])
        qb.add_edges([(0, 1), (1, 2)])
        q = qb.build()

        db = GraphBuilder()
        # v0: A with C neighbor that has a B neighbor (good).
        # v3: A with C neighbor whose other neighbor is A (bad).
        db.add_vertices(["A", "C", "B", "A", "C", "A"])
        db.add_edges([(0, 1), (1, 2), (3, 4), (4, 5)])
        d = db.build()

        nlf = nlf_candidates(q, d)
        assert set(nlf[0]) == {0, 3, 5}  # NLF cannot tell them apart
        nlf2 = nlf2_candidates(q, d)
        assert set(nlf2[0]) == {0}  # distance-2 info removes v3/v5

    def test_subset_of_nlf(self, rng):
        for _ in range(15):
            q, d = make_random_pair(rng)
            nlf = nlf_candidates(q, d)
            nlf2 = nlf2_candidates(q, d)
            for a, b in zip(nlf2, nlf):
                assert set(a) <= set(b)

    def test_sound_vs_bruteforce(self, rng):
        for _ in range(25):
            q, d = make_random_pair(rng)
            c = nlf2_candidates(q, d)
            for emb in enumerate_embeddings_bruteforce(q, d):
                for i, v in enumerate(emb):
                    assert v in c[i]

    def test_registered_in_pipeline(self, paper_query, paper_data):
        cs = build_candidate_space(paper_query, paper_data, method="nlf2")
        assert not cs.is_empty()

    def test_gup_with_nlf2_filter(self, rng):
        from repro.baselines.vf2 import Vf2Matcher

        config = GuPConfig(filter_method="nlf2")
        for _ in range(10):
            q, d = make_random_pair(rng)
            expected = Vf2Matcher().match(q, d).embedding_set()
            assert match(q, d, config=config).embedding_set() == expected
