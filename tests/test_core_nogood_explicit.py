"""Tests for the explicit (un-encoded) nogood representation."""

import pytest

from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.nogood import (
    ExplicitNogoodStore,
    NogoodStore,
    make_nogood_store,
)
from repro.baselines.vf2 import Vf2Matcher
from tests.conftest import make_random_pair

ORACLE = Vf2Matcher()


class TestFactory:
    def test_default(self):
        assert isinstance(make_nogood_store(), NogoodStore)

    def test_explicit(self):
        assert isinstance(make_nogood_store("explicit"), ExplicitNogoodStore)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown nogood representation"):
            make_nogood_store("nope")

    def test_representation_tags(self):
        assert NogoodStore.representation == "search_node"
        assert ExplicitNogoodStore.representation == "explicit"


class TestExplicitStore:
    def test_vertex_roundtrip(self):
        store = ExplicitNogoodStore()
        # Record NV(u2, 77) with dom {u0} while embedding = [5, 6].
        store.record_vertex_nogood(2, 77, 0b01, anc=None, embedding=[5, 6])
        # Matches any embedding assigning u0 -> 5.
        assert store.match_vertex(2, 77, None, [5, 9]) == 0b01
        assert store.match_vertex(2, 77, None, [4, 9]) is None
        assert store.match_vertex(2, 78, None, [5, 9]) is None

    def test_path_independent_matching(self):
        """The explicit representation's extra generality: a guard fires
        on any superset embedding, not only search-tree descendants."""
        store = ExplicitNogoodStore()
        store.record_vertex_nogood(3, 50, 0b10, None, [7, 8, 9])
        # Different u0/u2 assignments, same u1 assignment: still matches.
        assert store.match_vertex(3, 50, None, [1, 8, 2]) == 0b10

    def test_empty_dom_matches_everything(self):
        store = ExplicitNogoodStore()
        store.record_vertex_nogood(1, 5, 0, None, [3])
        assert store.match_vertex(1, 5, None, []) == 0

    def test_edge_roundtrip(self):
        store = ExplicitNogoodStore()
        store.record_edge_nogood(1, 10, 3, 20, 0b1, None, [4, 10])
        assert store.match_edge(1, 10, 3, 20, None, [4, 10]) == 0b1
        assert store.match_edge(1, 10, 3, 20, None, [5, 10]) is None

    def test_short_embedding_does_not_match(self):
        store = ExplicitNogoodStore()
        store.record_vertex_nogood(2, 9, 0b10, None, [1, 2])
        assert store.match_vertex(2, 9, None, [1]) is None

    def test_counters_and_memory(self):
        store = ExplicitNogoodStore()
        store.record_vertex_nogood(1, 5, 0b1, None, [3])
        store.record_edge_nogood(1, 5, 2, 6, 0b1, None, [3])
        assert store.num_vertex_guards == 1
        assert store.num_edge_guards == 1
        nv, ne = store.memory_estimate_bytes()
        assert nv > 0 and ne > 0
        store.clear()
        assert store.num_vertex_guards == 0


class TestSearchWithExplicitStore:
    def test_differential_vs_oracle(self, rng):
        config = GuPConfig(nogood_representation="explicit")
        for _ in range(25):
            q, d = make_random_pair(rng)
            expected = ORACLE.match(q, d).embedding_set()
            got = match(q, d, config=config).embedding_set()
            assert got == expected

    def test_explicit_prunes_at_least_as_much(self):
        """Path-independent matching can only widen guard applicability,
        so the explicit store never needs *more* recursions."""
        from repro.graph.generators import powerlaw_cluster_graph
        from repro.workload.querygen import generate_query

        total_encoded = total_explicit = 0
        for seed in range(8):
            d = powerlaw_cluster_graph(50, 3, 0.35, num_labels=3, seed=seed)
            q = generate_query(d, 9, "dense", seed=seed)
            total_encoded += match(q, d).stats.recursions
            total_explicit += match(
                q, d, config=GuPConfig(nogood_representation="explicit")
            ).stats.recursions
        assert total_explicit <= total_encoded
