"""End-to-end service tests (the acceptance differential + CI smoke).

The acceptance contract: for a fig6-style query set, results served
through the server — cold catalog, then warm cache, then the procpool
dispatch path — are byte-identical to direct ``GuPEngine.match``, and
the warm path performs **zero** ``DataArtifacts`` rebuilds (asserted
via the counters exposed by the ``stats`` op).

``TestServeSubprocessSmoke`` is the CI smoke test: it drives the real
``repro serve`` process over a real socket.
"""

import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.engine import GuPEngine
from repro.graph.io import save_graph, saves_graph
from repro.matching.limits import SearchLimits
from repro.service.catalog import GraphCatalog
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServerThread
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query_set

SRC = Path(__file__).resolve().parent.parent / "src"
LIMIT = 1_000


@pytest.fixture(scope="module")
def workload():
    data = load_dataset("wordnet", scale=0.25, seed=2023)
    queries = generate_query_set(
        data, QuerySetSpec(8, "sparse"), count=3, seed=2023
    )
    return data, list(queries)


@pytest.fixture(scope="module")
def service(workload, tmp_path_factory):
    """A live server over a cold-started catalog (artifacts from disk)."""
    data, _ = workload
    root = tmp_path_factory.mktemp("catalog")
    GraphCatalog(root).add("wordnet", data)  # build + persist, then discard
    catalog = GraphCatalog(root)  # cold: nothing resident
    with ServerThread(catalog, max_inflight=2, max_pending=8) as thread:
        yield thread


def assert_reply_identical(reply, direct):
    assert reply.embeddings == direct.embeddings
    assert reply.num_embeddings == direct.num_embeddings
    assert reply.status == direct.status.value


class TestEndToEndExactness:
    def test_cold_warm_procpool_byte_identical(self, workload, service):
        data, queries = workload
        limits = SearchLimits(max_embeddings=LIMIT)
        direct = [GuPEngine(data).match(q, limits=limits) for q in queries]
        with ServiceClient(*service.address) as client:
            base = client.stats()

            # Pass 1 — cold catalog: engines load persisted artifacts.
            for query, expected in zip(queries, direct):
                reply = client.query(query, "wordnet", limit=LIMIT)
                assert reply.cache == "miss"
                assert_reply_identical(reply, expected)
            cold = client.stats()
            assert cold["catalog"]["artifact_loads"] == 1
            assert cold["catalog"]["artifact_builds"] == 0
            assert cold["catalog"]["artifact_rebuilds"] == 0

            # Pass 2 — warm cache: every query hits, nothing rebuilds.
            for query, expected in zip(queries, direct):
                reply = client.query(query, "wordnet", limit=LIMIT)
                assert reply.cache == "hit"
                assert_reply_identical(reply, expected)
            warm = client.stats()
            assert warm["qcache"]["hits"] >= len(queries)
            for counter in ("artifact_builds", "artifact_rebuilds",
                            "artifact_loads"):
                assert warm["catalog"][counter] == cold["catalog"][counter]
            assert (
                warm["artifact_builds_in_process"]
                == cold["artifact_builds_in_process"]
            ), "warm path must not rebuild DataArtifacts"

            # Pass 3 — procpool dispatch: still byte-identical.
            for query, expected in zip(queries, direct):
                reply = client.query(
                    query, "wordnet", limit=LIMIT, workers=2, cache=False
                )
                assert reply.cache == "bypass"
                assert_reply_identical(reply, expected)
            final = client.stats()
            assert final["server"]["procpool_dispatches"] >= len(queries)
            assert base["server"]["queries"] + 3 * len(queries) == final[
                "server"
            ]["queries"]

    def test_lower_cap_served_from_warm_cache(self, workload, service):
        data, queries = workload
        query = queries[0]
        with ServiceClient(*service.address) as client:
            client.query(query, "wordnet", limit=LIMIT)  # ensure cached
            direct = GuPEngine(data).match(
                query, limits=SearchLimits(max_embeddings=5)
            )
            reply = client.query(query, "wordnet", limit=5)
            assert reply.cache == "hit"
            assert_reply_identical(reply, direct)

    def test_count_only_and_chunked_streaming(self, workload, service):
        data, queries = workload
        query = queries[1]
        direct = GuPEngine(data).match(
            query, limits=SearchLimits(max_embeddings=50)
        )
        with ServiceClient(*service.address) as client:
            chunked = client.query(
                query, "wordnet", limit=50, chunk_size=7, cache=False
            )
            assert_reply_identical(chunked, direct)
            counted = client.query(query, "wordnet", limit=50, count_only=True)
            assert counted.embeddings == []
            assert counted.num_embeddings == direct.num_embeddings


class TestProtocol:
    def test_ping_and_stats_shape(self, service):
        with ServiceClient(*service.address) as client:
            assert client.ping()
            stats = client.stats()
            for section in ("server", "catalog", "qcache"):
                assert section in stats
            for counter in ("queries", "served", "rejected", "errors"):
                assert counter in stats["server"]

    def test_catalog_ops_over_the_wire(self, service):
        tiny = (
            "t 3 2\nv 0 1 1\nv 1 2 2\nv 2 1 1\ne 0 1\ne 1 2\n"
        )
        with ServiceClient(*service.address) as client:
            entry = client.catalog_add("tiny", tiny)
            assert entry["num_vertices"] == 3
            assert "tiny" in [e["name"] for e in client.catalog_list()]
            reply = client.query("t 2 1\nv 0 1 1\nv 1 2 1\ne 0 1\n", "tiny")
            assert reply.num_embeddings == 2
            assert reply.status == "complete"

    def test_overwrite_invalidates_query_cache(self, service):
        """Replacing a catalog entry's graph must drop cached results
        computed against the old graph."""
        a = "t 2 1\nv 0 7 1\nv 1 8 1\ne 0 1\n"          # one 7-8 edge
        b = "t 3 2\nv 0 7 2\nv 1 8 1\nv 2 8 1\ne 0 1\ne 0 2\n"  # two
        probe = "t 2 1\nv 0 7 1\nv 1 8 1\ne 0 1\n"
        with ServiceClient(*service.address) as client:
            client.catalog_add("mut", a)
            assert client.query(probe, "mut").num_embeddings == 1
            assert client.query(probe, "mut").cache == "hit"
            client.catalog_add("mut", b, overwrite=True)
            reply = client.query(probe, "mut")
            assert reply.cache == "miss", "stale cache served after overwrite"
            assert reply.num_embeddings == 2

    def test_unknown_catalog_entry_is_clean_error(self, service):
        with ServiceClient(*service.address) as client:
            with pytest.raises(ServiceError, match="nope"):
                client.query("t 1 0\nv 0 1 0\n", "nope")
            assert client.ping()  # connection survives

    def test_malformed_requests_keep_connection_alive(self, service):
        host, port = service.address
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")

            def roundtrip(raw: bytes):
                handle.write(raw + b"\n")
                handle.flush()
                return json.loads(handle.readline())

            assert not roundtrip(b"this is not json")["ok"]
            assert not roundtrip(b'["not", "an", "object"]')["ok"]
            assert not roundtrip(b'{"op": "frobnicate"}')["ok"]
            assert not roundtrip(b'{"op": "query"}')["ok"]
            assert not roundtrip(
                json.dumps(
                    {"op": "query", "data": "wordnet", "graph": "v broken"}
                ).encode()
            )["ok"]
            assert not roundtrip(
                json.dumps(
                    {"op": "query", "data": "wordnet",
                     "graph": "t 1 0\nv 0 1 0\n", "limit": -3}
                ).encode()
            )["ok"]
            assert roundtrip(b'{"op": "ping"}')["ok"]

    def test_admission_control_rejects_when_saturated(self, workload, service):
        query = workload[1][0]
        server = service.server
        server._active = server.max_inflight + server.max_pending
        try:
            with ServiceClient(*service.address) as client:
                with pytest.raises(ServiceError, match="overloaded"):
                    client.query(query, "wordnet", limit=1)
        finally:
            server._active = 0
        with ServiceClient(*service.address) as client:
            assert client.query(query, "wordnet", limit=1).num_embeddings == 1

    def test_concurrent_clients(self, workload, service):
        data, queries = workload
        limits = SearchLimits(max_embeddings=LIMIT)
        direct = [GuPEngine(data).match(q, limits=limits) for q in queries]
        failures = []

        def worker(query, expected):
            try:
                with ServiceClient(*service.address) as client:
                    reply = client.query(query, "wordnet", limit=LIMIT)
                    assert_reply_identical(reply, expected)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(q, e))
            for q, e in zip(queries, direct)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures


class TestCliQueryCommand:
    def test_query_cli_against_live_server(
        self, workload, service, tmp_path, capsys
    ):
        data, queries = workload
        for i, query in enumerate(queries):
            save_graph(query, tmp_path / f"q{i}.graph")
        host, port = service.address
        rc = cli_main(
            [
                "query", str(tmp_path / "q*.graph"), "wordnet",
                "--host", host, "--port", str(port), "--limit", str(LIMIT),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        expected = sum(
            GuPEngine(data)
            .match(q, limits=SearchLimits(max_embeddings=LIMIT))
            .num_embeddings
            for q in queries
        )
        assert f"total embeddings: {expected}" in out

    def test_query_cli_empty_glob_fails(self, service, tmp_path, capsys):
        host, port = service.address
        rc = cli_main(
            [
                "query", str(tmp_path / "missing*.graph"), "wordnet",
                "--host", host, "--port", str(port),
            ]
        )
        assert rc != 0
        assert "no query files match" in capsys.readouterr().err


class TestShutdownWithIdleClient:
    def test_shutdown_not_blocked_by_idle_connection(
        self, workload, tmp_path_factory
    ):
        """An idle connected client must not hang graceful shutdown
        (Server.wait_closed awaits live handlers on Python >= 3.12.1)."""
        data, _ = workload
        root = tmp_path_factory.mktemp("idle-catalog")
        catalog = GraphCatalog(root)
        catalog.add("wordnet", data)
        thread = ServerThread(catalog)
        thread.start()
        idle = ServiceClient(*thread.address)   # connects, then sits
        try:
            idle.ping()
            with ServiceClient(*thread.address) as other:
                other.shutdown()
            thread.stop(timeout=30)
            assert not thread._thread.is_alive(), "server hung on shutdown"
        finally:
            idle.close()


class TestServeSubprocessSmoke:
    """The CI smoke: real ``repro serve`` process, real socket."""

    def test_serve_query_stats_shutdown(self, workload, tmp_path):
        data, queries = workload
        root = tmp_path / "catalog"
        GraphCatalog(root).add("wordnet", data)
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root", str(root),
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = []

            def read_banner():
                banner.append(proc.stdout.readline())

            reader = threading.Thread(target=read_banner, daemon=True)
            reader.start()
            reader.join(timeout=60)
            assert banner and banner[0], "server printed no banner"
            port = int(banner[0].rsplit(":", 1)[1])

            query = queries[0]
            direct = GuPEngine(data).match(
                query, limits=SearchLimits(max_embeddings=LIMIT)
            )
            with ServiceClient(port=port, timeout=120) as client:
                reply = client.query(
                    saves_graph(query), "wordnet", limit=LIMIT
                )
                assert_reply_identical(reply, direct)
                stats = client.stats()
                assert stats["server"]["served"] == 1
                assert stats["catalog"]["artifact_rebuilds"] == 0
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
