"""Unit + property tests for reservation guards (§3.2).

The key property test checks Definition 3.3 directly: for every
generated guard ``R(u_i, v)``, every subembedding rooted at ``(u_i, v)``
(enumerated exhaustively) must contain an assignment to a vertex of the
guard.
"""

import random

import pytest

from repro.core.reservation import (
    generate_reservation_guards,
    is_matchable,
    reservation_memory_bytes,
)
from repro.filtering.candidate_space import CandidateSpace, build_candidate_space
from repro.filtering.nlf import nlf_candidates
from tests.conftest import make_random_pair


def rooted_subembeddings(cs, i, v):
    """Exhaustively enumerate subembeddings rooted at (u_i, v) (Def 3.2)."""
    query = cs.query
    # Inclusive descendants of u_i (Definition 3.1).
    descendants = {i}
    changed = True
    while changed:
        changed = False
        for u in list(descendants):
            for w in query.neighbors(u):
                if w > u and w not in descendants:
                    descendants.add(w)
                    changed = True
    members = sorted(descendants)
    index = {u: p for p, u in enumerate(members)}

    results = []

    def backtrack(assignment):
        p = len(assignment)
        if p == len(members):
            results.append(dict(zip(members, assignment)))
            return
        u = members[p]
        for cand in cs.candidates[u]:
            if cand in assignment:
                continue
            ok = True
            for w in query.neighbors(u):
                if w in index and index[w] < p:
                    if not cs.data.has_edge(assignment[index[w]], cand):
                        ok = False
                        break
            if ok:
                backtrack(assignment + [cand])

    # Force the root assignment.
    if v in cs.candidates[i]:
        backtrack([v])
    return [m for m in results if m[i] == v]


class TestPaperExamples:
    def test_example_3_13(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        R = generate_reservation_guards(cs, size_limit=3)
        assert R[(3, 9)] == frozenset({0})
        assert R[(2, 5)] == frozenset({0})
        assert R[(4, 0)] == frozenset({0})
        assert R[(4, 13)] == frozenset({13})

    def test_example_3_8_matchability(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        # {v0, v1} fails condition (ii) at position 1.
        assert not is_matchable(cs, 1, frozenset({0, 1}))
        # Each singleton alone is matchable there.
        assert is_matchable(cs, 1, frozenset({0}))
        assert is_matchable(cs, 1, frozenset({1}))

    def test_condition_i(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        # v13 is only a candidate of u4, so C^{-1}(v13)[:i] is empty for
        # every position i <= 4 — {v13} is never matchable as a guard.
        assert not is_matchable(cs, 2, frozenset({13}))
        assert not is_matchable(cs, 4, frozenset({13}))
        # v0 is a candidate of u0, so it is matchable from position 1 on.
        assert is_matchable(cs, 4, frozenset({0}))


class TestGeneration:
    def test_every_candidate_gets_a_guard(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        R = generate_reservation_guards(cs)
        for i in paper_query.vertices():
            for v in cs.candidates[i]:
                assert (i, v) in R
                assert len(R[(i, v)]) >= 0

    def test_size_limit_respected(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng, max_query=7)
            cs = build_candidate_space(q, d, method="nlf")
            for r in (0, 1, 2, 3):
                R = generate_reservation_guards(cs, size_limit=r)
                for (i, v), guard in R.items():
                    # Trivial fallback {v} is exempt from the limit.
                    assert len(guard) <= max(r, 1)

    def test_memory_model(self, paper_query, paper_data):
        cs = CandidateSpace(paper_query, paper_data, nlf_candidates(paper_query, paper_data))
        R = generate_reservation_guards(cs)
        assert reservation_memory_bytes(R) > 0


class TestReservationProperty:
    """Definition 3.3, checked by exhaustive enumeration."""

    @pytest.mark.parametrize("size_limit", [1, 3, None])
    def test_guards_are_reservations(self, size_limit, rng):
        for _ in range(30):
            q, d = make_random_pair(rng, max_query=5, max_data=10)
            cs = build_candidate_space(q, d, method="nlf")
            R = generate_reservation_guards(cs, size_limit=size_limit)
            for (i, v), guard in R.items():
                # Definition 3.3: every rooted subembedding must hit the
                # guard.  An empty guard therefore asserts there is no
                # rooted subembedding at all.
                for sub in rooted_subembeddings(cs, i, v):
                    used = set(sub.values())
                    assert used & set(guard), (
                        f"guard {set(guard)} missed subembedding {sub} "
                        f"rooted at (u{i}, v{v})"
                    )

    def test_empty_guard_only_when_no_subembedding(self, rng):
        # An empty reservation asserts NO rooted subembedding exists.
        for _ in range(20):
            q, d = make_random_pair(rng, max_query=5, max_data=10)
            cs = build_candidate_space(q, d, method="nlf")
            R = generate_reservation_guards(cs, size_limit=3)
            for (i, v), guard in R.items():
                if guard == frozenset():
                    assert rooted_subembeddings(cs, i, v) == []
