"""Tests for injective counting and DAF's leaf decomposition."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.daf import DafMatcher
from repro.baselines.leaf_decomposition import leaf_last_order, query_leaves
from repro.baselines.vf2 import Vf2Matcher
from repro.graph.builder import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators import erdos_renyi_graph, random_connected_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.ordering.base import is_connected_order
from repro.utils.counting import count_injective_assignments

ORACLE = Vf2Matcher()
COUNT = SearchLimits(collect=False)


def brute_force_injective(sets):
    count = 0
    for combo in itertools.product(*[sorted(s) for s in sets]):
        if len(set(combo)) == len(combo):
            count += 1
    return count


class TestCounting:
    def test_empty(self):
        assert count_injective_assignments([]) == 1

    def test_single(self):
        assert count_injective_assignments([{1, 2, 3}]) == 3

    def test_disjoint(self):
        assert count_injective_assignments([{1, 2}, {3, 4}]) == 4

    def test_identical_pairs(self):
        # Two sets {1,2}: injective pairs = 2 (permutations).
        assert count_injective_assignments([{1, 2}, {1, 2}]) == 2

    def test_impossible(self):
        assert count_injective_assignments([{1}, {1}]) == 0

    def test_empty_set_blocks(self):
        assert count_injective_assignments([{1, 2}, set()]) == 0

    def test_partition_equals_backtracking(self):
        rng = random.Random(6)
        for _ in range(30):
            r = rng.randint(1, 5)
            sets = [
                {rng.randrange(8) for _ in range(rng.randint(0, 5))}
                for _ in range(r)
            ]
            if any(not s for s in sets):
                continue
            exact = count_injective_assignments(sets, exact_limit=8)
            fallback = count_injective_assignments(sets, exact_limit=0)
            assert exact == fallback == brute_force_injective(sets)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=6),
        min_size=0,
        max_size=5,
    )
)
def test_counting_property(sets):
    assert count_injective_assignments(sets) == brute_force_injective(sets)


class TestQueryLeaves:
    def test_star(self):
        assert query_leaves(star_graph("C", "AAA")) == [1, 2, 3]

    def test_cycle_has_none(self):
        assert query_leaves(cycle_graph("AAAA")) == []

    def test_path(self):
        # Path of 4: both endpoints are leaves (inner vertices deg 2).
        assert query_leaves(path_graph("AAAA")) == [0, 3]

    def test_single_edge_keeps_a_core(self):
        q = path_graph("AB")
        leaves = query_leaves(q)
        assert leaves == [1]

    def test_single_vertex(self):
        b = GraphBuilder()
        b.add_vertex("A")
        assert query_leaves(b.build()) == []

    def test_isolated_vertices_are_leaves(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        assert 1 in query_leaves(b.build())


class TestLeafLastOrder:
    def test_leaves_trail(self):
        q = star_graph("C", "AAAA")
        order = leaf_last_order(q, [[0]] * 5)
        assert order[0] == 0
        assert sorted(order[1:]) == [1, 2, 3, 4]

    def test_connected_order(self, rng):
        for _ in range(15):
            n = rng.randint(2, 9)
            q = random_connected_graph(
                n, n - 1 + rng.randint(0, 5), num_labels=2,
                seed=rng.randint(0, 10**9),
            )
            order = leaf_last_order(q, [[0]] * n)
            assert sorted(order) == list(range(n))
            assert is_connected_order(q, order)

    def test_no_leaves_falls_back(self):
        q = cycle_graph("AAAA")
        order = leaf_last_order(q, [[0, 1]] * 4)
        assert sorted(order) == [0, 1, 2, 3]


class TestDafLeafDecomposition:
    def test_counts_match_oracle(self, rng):
        leafy = DafMatcher(leaf_decomposition=True)
        for _ in range(25):
            nq = rng.randint(2, 6)
            nd = rng.randint(4, 14)
            labels = rng.randint(1, 3)
            q = random_connected_graph(
                nq, nq - 1 + rng.randint(0, 3), num_labels=labels,
                seed=rng.randint(0, 10**9),
            )
            d = erdos_renyi_graph(
                nd, rng.randint(0, nd * 2), num_labels=labels,
                seed=rng.randint(0, 10**9),
            )
            truth = ORACLE.match(q, d).num_embeddings
            assert leafy.match(q, d, COUNT).num_embeddings == truth

    def test_enumeration_unaffected(self, rng):
        leafy = DafMatcher(leaf_decomposition=True)
        for _ in range(10):
            nq = rng.randint(2, 5)
            q = random_connected_graph(nq, nq - 1, num_labels=2,
                                       seed=rng.randint(0, 10**9))
            d = erdos_renyi_graph(10, 20, num_labels=2,
                                  seed=rng.randint(0, 10**9))
            assert (
                leafy.match(q, d).embedding_set()
                == ORACLE.match(q, d).embedding_set()
            )

    def test_counting_shortcut_saves_recursions(self):
        q = star_graph(0, [1, 1, 1, 1])
        d = erdos_renyi_graph(35, 180, 2, seed=5)
        plain = DafMatcher().match(q, d, COUNT)
        leafy = DafMatcher(leaf_decomposition=True).match(q, d, COUNT)
        assert plain.num_embeddings == leafy.num_embeddings
        if plain.num_embeddings:
            assert leafy.stats.recursions < plain.stats.recursions

    def test_embedding_cap_clamped_exactly(self):
        q = star_graph(0, [1, 1, 1])
        d = erdos_renyi_graph(30, 150, 2, seed=6)
        full = DafMatcher(leaf_decomposition=True).match(q, d, COUNT)
        if full.num_embeddings > 5:
            capped = DafMatcher(leaf_decomposition=True).match(
                q, d, SearchLimits(max_embeddings=5, collect=False)
            )
            assert capped.num_embeddings == 5
            assert capped.status is TerminationStatus.EMBEDDING_LIMIT

    def test_cliques_have_no_leaves(self):
        q = complete_graph([0, 0, 0])
        d = erdos_renyi_graph(12, 40, 1, seed=7)
        truth = ORACLE.match(q, d).num_embeddings
        assert DafMatcher(leaf_decomposition=True).match(
            q, d, COUNT
        ).num_embeddings == truth
