"""Unit tests for GCS construction (§3.1)."""

import pytest

from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.graph.builder import GraphBuilder
from repro.ordering.base import is_connected_order
from tests.conftest import make_random_pair


class TestBuildGcs:
    def test_order_is_connected(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng)
            gcs = build_gcs(q, d)
            assert sorted(gcs.order) == list(q.vertices())
            assert is_connected_order(q, gcs.order)
            # The reordered query under the identity order is connected.
            assert is_connected_order(gcs.query, list(q.vertices()))

    def test_reordered_query_preserves_structure(self, rng):
        q, d = make_random_pair(rng)
        gcs = build_gcs(q, d)
        assert gcs.query.num_edges == q.num_edges
        for new_u, new_v in gcs.query.edges():
            assert q.has_edge(gcs.order[new_u], gcs.order[new_v])

    def test_to_original_embedding(self, rng):
        q, d = make_random_pair(rng)
        gcs = build_gcs(q, d)
        reordered_embedding = tuple(range(q.num_vertices))
        original = gcs.to_original_embedding(reordered_embedding)
        for position, v in enumerate(reordered_embedding):
            assert original[gcs.order[position]] == v

    def test_reservations_generated_by_default(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data)
        assert gcs.reservations
        for i in gcs.query.vertices():
            for v in gcs.cs.candidates[i]:
                assert gcs.reservation(i, v)

    def test_reservations_skipped_when_disabled(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data, GuPConfig.baseline())
        assert gcs.reservations == {}
        # Fallback accessor still answers with the trivial reservation.
        i = 0
        v = gcs.cs.candidates[0][0]
        assert gcs.reservation(i, v) == frozenset({v})

    def test_two_core_restriction(self):
        # Tadpole query: triangle + tail; NE guards only on the triangle.
        qb = GraphBuilder()
        qb.add_vertices("AAAAA")
        qb.add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        q = qb.build()
        db = GraphBuilder()
        db.add_vertices("AAAAAA")
        db.add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])
        d = db.build()
        gcs = build_gcs(q, d)
        core_edges = {e for e in gcs.query.edges() if gcs.edge_in_two_core(*e)}
        assert len(core_edges) == 3
        gcs_all = build_gcs(q, d, GuPConfig(ne_two_core_only=False))
        assert len(gcs_all.two_core) == q.num_edges

    def test_memory_estimate_keys(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data)
        est = gcs.memory_estimate()
        assert set(est) == {
            "candidate_space",
            "reservation",
            "nogood_vertices",
            "nogood_edges",
        }
        assert est["candidate_space"] > 0
        assert est["reservation"] > 0

    def test_fresh_nogoods_resets(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data)
        store1 = gcs.nogoods
        store2 = gcs.fresh_nogoods()
        assert store2 is gcs.nogoods
        assert store2 is not store1

    def test_build_seconds_recorded(self, paper_query, paper_data):
        gcs = build_gcs(paper_query, paper_data)
        assert gcs.build_seconds >= 0.0
