"""Kernel-conformance suite for the mask backends (DESIGN.md §11).

Every mask kernel the ``words`` backend provides must agree *bit for
bit* with the Python-int oracle — this file is the reusable harness
that proves it, and the template any future backend (C extension, pure
numpy, SIMD) must pass to earn a ``mask_backend`` value:

* a shared fixture list of word-boundary cases (empty mask, bit 63 /
  64 / 127, all-ones words, width mismatches) run against both
  backends and both words code paths (numpy on and off);
* Hypothesis round-trip properties: ``from_words(to_words(m)) == m``,
  and popcount / AND / OR / ANDNOT / decode agreeing with the int
  oracle on arbitrary masks;
* conformance of the composite kernels — survivors, threshold ladders,
  edge-bit flips, index packing — against the int implementations;
* the typed :class:`EmptyMaskError` / :class:`WordWidthError` contracts.
"""

import random
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.mask_kernels import (
    MASK_BACKENDS,
    IntAdjacencyOps,
    WordAdjacencyOps,
    get_kernels,
)
from repro.utils import words as W
from repro.utils.bitset import bits_of, highest_bit, lowest_bit
from repro.utils.words import EmptyMaskError, WordWidthError

# ----------------------------------------------------------------------
# Shared word-boundary fixtures: (name, mask, nbits)
# ----------------------------------------------------------------------

BOUNDARY_CASES = [
    ("empty", 0, 64),
    ("bit0", 1, 64),
    ("bit63", 1 << 63, 64),
    ("bit64", 1 << 64, 128),
    ("bit127", 1 << 127, 128),
    ("bits63_64", (1 << 63) | (1 << 64), 128),
    ("all_ones_1w", (1 << 64) - 1, 64),
    ("all_ones_2w", (1 << 128) - 1, 128),
    ("straddle", ((1 << 70) - 1) ^ (1 << 5), 128),
    ("sparse_wide", (1 << 200) | (1 << 64) | 1, 256),
    ("ragged_width", (1 << 65) | (1 << 3), 100),
]

BACKENDS = list(MASK_BACKENDS)


@pytest.fixture(params=[True, False], ids=["numpy", "pure"])
def words_numpy_mode(request, monkeypatch):
    """Run words-backend checks with the numpy fast path on and off."""
    if request.param and not W.HAVE_NUMPY:
        pytest.skip("numpy not available")
    monkeypatch.setattr(W, "HAVE_NUMPY", request.param)
    import repro.filtering.mask_kernels as mk

    monkeypatch.setattr(mk, "HAVE_NUMPY", request.param)
    return request.param


# ----------------------------------------------------------------------
# Representation round-trips
# ----------------------------------------------------------------------


class TestWordsRepresentation:
    @pytest.mark.parametrize("name,mask,nbits", BOUNDARY_CASES)
    def test_round_trip(self, name, mask, nbits):
        nw = W.nwords_for(nbits)
        assert W.from_words(W.to_words(mask, nw)) == mask

    def test_to_words_layout_is_little_endian_limbs(self):
        words = W.to_words((1 << 64) | 3, 2)
        assert list(words) == [3, 1]
        assert isinstance(words, array) and words.typecode == "Q"

    def test_width_mismatch_raises(self):
        with pytest.raises(WordWidthError):
            W.to_words(1 << 64, 1)
        with pytest.raises(WordWidthError):
            W.words_and(W.zero_words(1), W.zero_words(2))
        with pytest.raises(WordWidthError):
            W.words_or(W.zero_words(2), W.zero_words(3))
        with pytest.raises(WordWidthError):
            W.words_andnot(W.zero_words(1), W.zero_words(2))
        with pytest.raises(WordWidthError):
            W.words_set_bit(W.zero_words(1), 64)
        with pytest.raises(WordWidthError):
            W.words_test_bit(W.zero_words(2), 200)

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            W.to_words(-1, 1)

    def test_from_words_accepts_plain_sequences(self):
        assert W.from_words([3, 1]) == (1 << 64) | 3
        if W.HAVE_NUMPY:
            import numpy as np

            assert W.from_words(np.array([3, 1], dtype=np.uint64)) == (1 << 64) | 3

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 512) - 1))
    def test_round_trip_property(self, mask):
        nw = W.nwords_for(max(1, mask.bit_length()))
        assert W.from_words(W.to_words(mask, nw)) == mask
        if W.HAVE_NUMPY:
            assert W.from_words(W.np_words(mask, nw)) == mask


# ----------------------------------------------------------------------
# Pure word kernels vs the int oracle
# ----------------------------------------------------------------------

pair_masks = st.tuples(
    st.integers(min_value=0, max_value=(1 << 300) - 1),
    st.integers(min_value=0, max_value=(1 << 300) - 1),
)


class TestPureKernelsAgainstIntOracle:
    @settings(max_examples=150, deadline=None)
    @given(pair_masks)
    def test_binary_ops(self, pair):
        a, b = pair
        nw = W.nwords_for(300)
        wa, wb = W.to_words(a, nw), W.to_words(b, nw)
        assert W.from_words(W.words_and(wa, wb)) == a & b
        assert W.from_words(W.words_or(wa, wb)) == a | b
        assert W.from_words(W.words_andnot(wa, wb)) == a & ~b & ((1 << nw * 64) - 1)
        assert W.words_eq(wa, wb) == (a == b)

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_unary_ops(self, mask):
        nw = W.nwords_for(300)
        words = W.to_words(mask, nw)
        assert W.words_popcount(words) == mask.bit_count()
        assert W.words_any(words) == bool(mask)
        assert list(W.words_iter_bits(words)) == bits_of(mask)
        if mask:
            assert W.words_lowest_bit(words) == lowest_bit(mask)
            assert W.words_highest_bit(words) == highest_bit(mask)

    @pytest.mark.parametrize("name,mask,nbits", BOUNDARY_CASES)
    def test_boundary_decode_and_popcount(self, name, mask, nbits):
        nw = W.nwords_for(nbits)
        words = W.to_words(mask, nw)
        assert W.words_popcount(words) == mask.bit_count()
        assert list(W.words_iter_bits(words)) == bits_of(mask)
        for i in range(0, nbits, 7):
            assert W.words_test_bit(words, i) == bool(mask >> i & 1)

    def test_set_clear_bits(self):
        words = W.zero_words(2)
        W.words_set_bit(words, 63)
        W.words_set_bit(words, 64)
        assert W.from_words(words) == (1 << 63) | (1 << 64)
        W.words_clear_bit(words, 63)
        assert W.from_words(words) == 1 << 64
        W.words_clear_bit(words, 0)  # clearing an unset bit is a no-op
        assert W.from_words(words) == 1 << 64


# ----------------------------------------------------------------------
# Typed zero-mask errors — identical contract in both representations
# ----------------------------------------------------------------------


class TestEmptyMaskError:
    def test_int_backend_raises_typed_value_error(self):
        with pytest.raises(EmptyMaskError):
            highest_bit(0)
        with pytest.raises(EmptyMaskError):
            lowest_bit(0)
        # EmptyMaskError IS a ValueError: callers that catch the broad
        # class keep working.
        with pytest.raises(ValueError):
            highest_bit(0)

    def test_words_backend_raises_same_type(self):
        zero = W.zero_words(3)
        with pytest.raises(EmptyMaskError):
            W.words_lowest_bit(zero)
        with pytest.raises(EmptyMaskError):
            W.words_highest_bit(zero)

    def test_nonzero_masks_unaffected(self):
        assert highest_bit(1 << 100) == 100
        assert lowest_bit(0b1100) == 2


# ----------------------------------------------------------------------
# Kernel providers: both backends, numpy on and off
# ----------------------------------------------------------------------


class TestKernelProviders:
    def test_get_kernels_dispatch(self):
        assert get_kernels("int").backend == "int"
        assert get_kernels("words").backend == "words"
        with pytest.raises(ValueError):
            get_kernels("simd")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name,mask,nbits", BOUNDARY_CASES)
    def test_popcount_and_positions(
        self, backend, name, mask, nbits, words_numpy_mode
    ):
        kern = get_kernels(backend)
        assert kern.popcount(mask) == mask.bit_count()
        assert list(kern.positions(mask)) == bits_of(mask)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_positions_returns_plain_ints(self, backend, words_numpy_mode):
        # numpy int64 would pickle (and compare under some protocols)
        # differently — decode must canonicalize to Python ints.
        kern = get_kernels(backend)
        wide = (1 << 700) | (1 << 64) | 1
        assert all(type(p) is int for p in kern.positions(wide))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mask_of_round_trip(self, backend, words_numpy_mode):
        kern = get_kernels(backend)
        rng = random.Random(3)
        for nbits in (1, 63, 64, 65, 127, 128, 700):
            mask = rng.getrandbits(nbits)
            assert kern.mask_of(bits_of(mask), nbits) == mask
            assert kern.mask_of(bits_of(mask)) == mask
        assert kern.mask_of([], 64) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_threshold_mask(self, backend, words_numpy_mode):
        kern = get_kernels(backend)
        oracle = get_kernels("int")
        rng = random.Random(5)
        for n in (0, 1, 63, 64, 65, 200):
            counts = [rng.randrange(6) for _ in range(n)]
            for needed in (0, 1, 3, 6):
                assert kern.threshold_mask(counts, needed) == oracle.threshold_mask(
                    counts, needed
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_flip_edge_bits(self, backend, words_numpy_mode):
        kern = get_kernels(backend)
        rng = random.Random(7)
        n = 150
        rows_oracle = [rng.getrandbits(n) for _ in range(n)]
        rows = list(rows_oracle)
        added = [(rng.randrange(n), rng.randrange(n)) for _ in range(30)]
        removed = [(rng.randrange(n), rng.randrange(n)) for _ in range(30)]
        get_kernels("int").flip_edge_bits(rows_oracle, added, removed)
        kern.flip_edge_bits(rows, added, removed)
        assert rows == rows_oracle

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 600) - 1),
        st.integers(min_value=0, max_value=(1 << 600) - 1),
    )
    def test_words_kernels_property(self, a, b):
        kern = get_kernels("words")
        assert kern.popcount(a) == a.bit_count()
        assert list(kern.positions(a)) == bits_of(a)
        assert kern.mask_of(bits_of(a), 600) == a
        # Composition through canonical ints: backend-neutral AND/OR.
        assert kern.popcount(a & b) == (a & b).bit_count()
        assert kern.popcount(a | b) == (a | b).bit_count()


# ----------------------------------------------------------------------
# Survival ops conformance (the DAG-DP inner kernel)
# ----------------------------------------------------------------------


def _random_adjacency(rng, n):
    rows = [0] * n
    for _ in range(n * 3):
        u, v = rng.randrange(n), rng.randrange(n)
        rows[u] |= 1 << v
        rows[v] |= 1 << u
    return rows


class TestSurvivorsConformance:
    @pytest.mark.parametrize("n", [1, 5, 64, 65, 130])
    def test_words_matches_int(self, n, words_numpy_mode):
        rng = random.Random(n)
        adjacency = _random_adjacency(rng, n)
        iops = IntAdjacencyOps(adjacency)
        wops = WordAdjacencyOps(adjacency, n)
        for _ in range(40):
            mask = rng.getrandbits(n)
            cons = [rng.getrandbits(n) for _ in range(rng.randrange(1, 4))]
            expected = iops.survivors(mask, cons)
            assert wops.survivors(mask, cons) == expected
            assert wops._survivors_pure(mask, cons) == expected

    def test_empty_inputs(self, words_numpy_mode):
        wops = WordAdjacencyOps([0b10, 0b01], 2)
        assert wops.survivors(0, [0b11]) == 0
        assert wops.survivors(0b11, []) == 0b11

    def test_boundary_widths(self, words_numpy_mode):
        # Survival across the 64-bit word boundary: vertex 63 adjacent
        # to vertex 64 only.
        n = 66
        adjacency = [0] * n
        adjacency[63] = 1 << 64
        adjacency[64] = 1 << 63
        wops = WordAdjacencyOps(adjacency, n)
        iops = IntAdjacencyOps(adjacency)
        mask = (1 << 63) | (1 << 64) | (1 << 65)
        cons = [(1 << 63) | (1 << 64)]
        assert wops.survivors(mask, cons) == iops.survivors(mask, cons) == (
            (1 << 63) | (1 << 64)
        )
