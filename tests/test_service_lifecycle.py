"""Zero-downtime reload and graceful drain (DESIGN.md §13).

Four layers:

* :func:`lifecycle_points` — the sweep contract.
* :meth:`GraphCatalog.reload` unit tests — the per-entry action report
  (kept / reloaded / removed / lazy) and the old-or-new swap invariant
  under injected crashes.
* Server integration — the ``reload`` / ``drain`` ops over the wire:
  external changes picked up without dropping queries, subscription
  diff-replay exactness (``old − removed + added == new``), and the
  three observability surfaces answering *during* a reload swap and a
  drain (``status`` reporting ``reloading`` / ``draining``).
* Fault sweeps over every lifecycle hook: a crash at any point leaves
  the server alive and the catalog at a consistent old-or-new epoch,
  a retried reload converges, and across crash + retry a subscriber
  receives its boundary delta **exactly once**.
"""

import threading
import time

import pytest

from repro.dynamic.delta import GraphDelta
from repro.graph.builder import graph_from_adjacency
from repro.matching.limits import SearchLimits
from repro.obs import parse_exposition
from repro.service.catalog import GraphCatalog
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service.faults import FaultPlan, FaultRule, InjectedCrash
from repro.service.lifecycle import lifecycle_points
from repro.service.server import ServerThread

from tests.test_obs import http_get


def world_v1():
    """AB matches {(0, 1), (2, 1)}."""
    return graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )


def world_v2():
    """AB matches {(0, 1), (2, 1), (2, 3)} — distinguishable from v1."""
    return graph_from_adjacency(
        ["A", "B", "A", "B"],
        [(0, 1), (1, 2), (2, 3)],
    )


AB_V1 = {(0, 1), (2, 1)}
AB_V2 = {(0, 1), (2, 1), (2, 3)}


def ab_query():
    return graph_from_adjacency(["A", "B"], [(0, 1)])


def serve_world(tmp_path, faults=None, **server_kwargs):
    root = tmp_path / "catalog"
    GraphCatalog(root).add("g", world_v1())
    catalog = GraphCatalog(root)
    if faults is not None:
        server_kwargs["faults"] = faults
    return ServerThread(catalog, **server_kwargs), root


def overwrite_externally(root, name="g", graph=None):
    """What another process does between our reloads."""
    GraphCatalog(root).add(name, graph or world_v2(), overwrite=True)


class TestLifecyclePoints:
    def test_reload_points_in_execution_order(self):
        assert lifecycle_points("reload") == (
            "lifecycle.reload.begin",
            "lifecycle.reload.scan",
            "lifecycle.reload.build",
            "lifecycle.reload.swap",
            "lifecycle.reload.replay",
            "lifecycle.reload.commit",
        )

    def test_drain_points_in_execution_order(self):
        assert lifecycle_points("drain") == (
            "lifecycle.drain.begin",
            "lifecycle.drain.wait",
            "lifecycle.drain.timeout",
            "lifecycle.drain.close",
        )

    def test_unknown_operation_raises(self):
        with pytest.raises(ValueError, match="unknown lifecycle"):
            lifecycle_points("restart")


def matches(catalog, name):
    result = catalog.engine(name).match(ab_query(), limits=SearchLimits())
    return {tuple(e) for e in result.embeddings}


class TestCatalogReload:
    def test_report_covers_all_four_actions(self, tmp_path):
        ours = GraphCatalog(tmp_path)
        ours.add("kept_e", world_v1())
        ours.add("reloaded_e", world_v1())
        ours.add("removed_e", world_v1())
        theirs = GraphCatalog(tmp_path)  # the "other process"
        theirs.add("reloaded_e", world_v2(), overwrite=True)
        theirs.remove("removed_e")
        theirs.add("lazy_e", world_v1())  # never resident in `ours`

        report = ours.reload()
        assert report["kept_e"]["action"] == "kept"
        assert report["kept_e"]["epoch"] == 1
        assert report["reloaded_e"]["action"] == "reloaded"
        assert report["reloaded_e"]["old_epoch"] == 1
        assert report["reloaded_e"]["epoch"] == 2
        assert report["removed_e"]["action"] == "removed"
        assert report["removed_e"]["epoch"] is None
        assert report["lazy_e"]["action"] == "lazy"
        assert ours.counters["reloads"] == 1

        assert matches(ours, "reloaded_e") == AB_V2
        assert matches(ours, "kept_e") == AB_V1
        assert matches(ours, "lazy_e") == AB_V1
        assert "removed_e" not in ours.names()

    def test_noop_reload_keeps_everything(self, tmp_path):
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", world_v1())
        report = catalog.reload()
        assert report == {
            "g": {"action": "kept", "old_epoch": 1, "epoch": 1,
                  "rebuilt": False},
        }

    def test_crash_before_swap_leaves_old_state(self, tmp_path):
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", world_v1())
        overwrite_externally(tmp_path)
        plan = FaultPlan([FaultRule("lifecycle.reload.build", "crash")])
        with pytest.raises(InjectedCrash):
            catalog.reload(faults=plan)
        # Nothing swapped: the resident engine still serves v1 at its
        # admitted epoch, exactly as if the reload had never started.
        assert matches(catalog, "g") == AB_V1
        assert catalog.counters["reloads"] == 0
        report = catalog.reload()  # retry converges to the new epoch
        assert report["g"]["action"] == "reloaded"
        assert matches(catalog, "g") == AB_V2

    def test_crash_at_swap_leaves_new_state(self, tmp_path):
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", world_v1())
        overwrite_externally(tmp_path)
        plan = FaultPlan([FaultRule("lifecycle.reload.swap", "crash")])
        with pytest.raises(InjectedCrash):
            catalog.reload(faults=plan)
        # The swap hook fires after the locked swap: new state, whole.
        assert matches(catalog, "g") == AB_V2
        assert catalog.reload()["g"]["action"] == "kept"


class TestServerReload:
    def test_external_overwrite_served_after_reload(self, tmp_path):
        thread, root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                reply = client.query(ab_query(), "g")
                assert set(reply.embeddings) == AB_V1
                overwrite_externally(root)
                out = client.reload()
                assert out["ok"] is True
                assert out["status"] == "serving"
                assert out["report"]["g"]["action"] == "reloaded"
                assert out["report"]["g"]["epoch"] == 2
                # The warm cache held a v1 result; the reload dropped
                # it, so even a cache-friendly query sees v2.
                assert set(client.query(ab_query(), "g").embeddings) == AB_V2
                stats = client.stats()
                health = client.healthz()
            assert stats["server"]["reloads"] == 1
            assert stats["catalog"]["reloads"] == 1
            assert health["entries"]["g"] == 2

    def test_noop_reload_reports_kept(self, tmp_path):
        thread, _root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.query(ab_query(), "g")  # make the engine resident
                out = client.reload()
            assert out["report"]["g"]["action"] == "kept"
            assert out["replayed"] == 0

    def test_subscriber_replayed_with_exact_boundary_diff(self, tmp_path):
        thread, root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as subscriber, \
                    ServiceClient(*thread.address) as ops:
                sub = subscriber.subscribe(ab_query(), "g")
                old = set(sub.embeddings)
                assert old == AB_V1
                overwrite_externally(root)
                out = ops.reload()
                assert out["replayed"] == 1
                event = subscriber.next_event(timeout=30)
                assert event["event"] == "delta"
                assert event["subscription"] == sub.subscription
                assert event["reload"] is True
                assert event["epoch"] == 2
                # The PR 5 invariant holds by construction across the
                # epoch boundary: old − removed + added == new.
                replayed = (old - set(event["removed"])) | set(event["added"])
                assert replayed == AB_V2
                # Exactly one event — nothing lost, nothing duplicated.
                with pytest.raises(ServiceUnavailable):
                    subscriber.next_event(timeout=0.3)

    def test_subscriber_on_removed_entry_gets_error_event(self, tmp_path):
        thread, root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as subscriber, \
                    ServiceClient(*thread.address) as ops:
                subscriber.subscribe(ab_query(), "g")
                GraphCatalog(root).remove("g")
                out = ops.reload()
                assert out["report"]["g"]["action"] == "removed"
                event = subscriber.next_event(timeout=30)
                assert event["event"] == "error"
                assert "removed" in event["error"]
                stats = ops.stats()
            assert stats["server"]["subscribers_dropped"] == 1

    def test_inband_update_then_reload_emits_nothing_twice(self, tmp_path):
        thread, _root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as subscriber, \
                    ServiceClient(*thread.address) as ops:
                subscriber.subscribe(ab_query(), "g")
                # An in-band update notifies subscribers on the update
                # path and persists epoch 2 — so the following reload
                # finds nothing stale and must NOT replay the diff.
                out = ops.update(
                    "g", GraphDelta(add_vertices=("A",), add_edges=((1, 6),))
                )
                assert out.subscribers_notified == 1
                event = subscriber.next_event(timeout=30)
                assert event["added"] == [(6, 1)]
                reload_out = ops.reload()
                assert reload_out["report"]["g"]["action"] == "kept"
                assert reload_out["replayed"] == 0
                with pytest.raises(ServiceUnavailable):
                    subscriber.next_event(timeout=0.3)


class TestSurfacesDuringReload:
    def test_status_reports_reloading_and_surfaces_answer(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("lifecycle.reload.build", "delay", seconds=1.2)]
        )
        thread, root = serve_world(tmp_path, faults=plan)
        with thread:
            host, port = thread.address
            with ServiceClient(host, port) as probe:
                probe.query(ab_query(), "g")
                overwrite_externally(root)
                result = {}
                with ServiceClient(host, port) as ops_client:
                    worker = threading.Thread(
                        target=lambda: result.update(ops_client.reload())
                    )
                    worker.start()
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        health = probe.healthz()
                        if health["status"] == "reloading":
                            break
                        time.sleep(0.01)
                    else:
                        pytest.fail("never observed status=reloading")
                    # All three surfaces answer mid-swap.
                    stats = probe.stats()
                    assert stats["server"]["status"] == "reloading"
                    exposition = parse_exposition(probe.metrics())
                    assert exposition  # parseable, non-empty
                    status_line, body = http_get(host, port, "/metrics")
                    assert "200" in status_line
                    assert "repro_server" in body
                    worker.join(timeout=30)
                assert result["ok"] is True
                assert result["report"]["g"]["action"] == "reloaded"
                assert probe.healthz()["status"] == "ok"
                assert set(
                    probe.query(ab_query(), "g", cache=False).embeddings
                ) == AB_V2


class TestSurfacesDuringDrain:
    def test_draining_sheds_but_surfaces_answer(self, tmp_path):
        plan = FaultPlan(
            [FaultRule("lifecycle.drain.wait", "delay", seconds=1.5)]
        )
        thread, _root = serve_world(tmp_path, faults=plan)
        with thread:
            host, port = thread.address
            with ServiceClient(host, port) as probe:
                probe.query(ab_query(), "g")
                result = {}
                with ServiceClient(host, port) as ops_client:
                    worker = threading.Thread(
                        target=lambda: result.update(
                            ops_client.drain(timeout=5.0)
                        )
                    )
                    worker.start()
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        health = probe.healthz()
                        if health["status"] == "draining":
                            break
                        time.sleep(0.01)
                    else:
                        pytest.fail("never observed status=draining")
                    # New queries are shed with the draining reason and
                    # a come-back hint...
                    with pytest.raises(ServiceOverloaded) as info:
                        probe.query(ab_query(), "g", cache=False)
                    assert info.value.reason == "draining"
                    assert info.value.retry_after is not None
                    # ...while all three surfaces keep answering, and
                    # agree on the shed accounting (PR 8 invariant).
                    stats = probe.stats()
                    assert stats["server"]["status"] == "draining"
                    assert stats["server"]["rejected"] == 1
                    tenant = stats["tenants"]["default"]
                    assert tenant["shed_draining"] == 1
                    exposition = parse_exposition(probe.metrics())
                    assert exposition[(
                        "repro_tenant_shed_draining_total",
                        (("tenant", "default"),),
                    )] == 1
                    status_line, body = http_get(host, port, "/metrics")
                    assert "200" in status_line
                    assert "repro_tenant_shed_draining_total" in body
                    worker.join(timeout=30)
            assert result == {
                "ok": True, "drained": True, "active": 0, "stopping": True,
            }
        # The context exit joined the thread: drain really stopped it.
        assert not thread._thread.is_alive()

    def test_drain_timeout_validation(self, tmp_path):
        thread, _root = serve_world(tmp_path)
        with thread:
            with ServiceClient(*thread.address) as client:
                for bad in (-1, True, "soon"):
                    with pytest.raises(ServiceError, match="timeout"):
                        client.drain(timeout=bad)
                assert client.ping()  # still serving: bad op, no drain
                assert client.healthz()["status"] == "ok"


class TestReloadFaultSweep:
    @pytest.mark.parametrize("point", lifecycle_points("reload"))
    def test_crash_at_each_point_converges_with_one_delta(
        self, tmp_path, point
    ):
        plan = FaultPlan([FaultRule(point, "crash")])
        thread, root = serve_world(tmp_path, faults=plan)
        with thread:
            with ServiceClient(*thread.address) as subscriber, \
                    ServiceClient(*thread.address) as client:
                old = set(subscriber.subscribe(ab_query(), "g").embeddings)
                overwrite_externally(root)
                with pytest.raises(ServiceError, match="injected crash"):
                    client.reload()
                # The server survives its own crash hook, and the
                # catalog is consistent at the old or the new epoch —
                # a retried reload converges either way.
                assert client.ping()
                out = client.reload()
                assert out["ok"] is True
                assert out["report"]["g"]["action"] in ("reloaded", "kept")
                # Wherever the crash hit — before the swap (retry does
                # the reload), at it (retry reports "kept" but replay
                # catches the stale epoch), or after the replay (the
                # crashed attempt already delivered) — the cache serves
                # the new epoch and the subscriber got its boundary
                # delta EXACTLY once.
                assert set(client.query(ab_query(), "g").embeddings) == AB_V2
                event = subscriber.next_event(timeout=30)
                assert event["reload"] is True
                replayed = (old - set(event["removed"])) | set(event["added"])
                assert replayed == AB_V2
                with pytest.raises(ServiceUnavailable):
                    subscriber.next_event(timeout=0.3)


class TestDrainFaultSweep:
    @pytest.mark.parametrize("point", lifecycle_points("drain"))
    def test_crash_at_each_point_still_stops_cleanly(self, tmp_path, point):
        plan = FaultPlan([FaultRule(point, "crash")])
        thread, _root = serve_world(tmp_path, faults=plan)
        with thread:
            with ServiceClient(*thread.address) as client:
                client.query(ab_query(), "g")
                try:
                    out = client.drain(timeout=2.0)
                except ServiceError as exc:
                    # Crashed mid-drain: the server is still up and a
                    # retried drain finishes the job.
                    assert "injected crash" in str(exc)
                    assert client.ping()
                    out = client.drain(timeout=2.0)
                else:
                    # The "timeout" hook only fires when the deadline
                    # expires with queries in flight; with an idle
                    # server the drain legitimately never reaches it.
                    assert point == "lifecycle.drain.timeout"
                assert out["ok"] is True
                assert out["drained"] is True
                assert out["stopping"] is True
        assert not thread._thread.is_alive()
