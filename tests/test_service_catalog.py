"""Catalog durability: artifacts survive restarts, corruption rebuilds.

Differential style (as in ``tests/test_parallel_exact.py``): whatever
the store's state — freshly built, reloaded in another process, or
recovered from deliberate corruption — a catalog engine must return
byte-identical ``match`` results to a fresh ``GuPEngine`` on the same
graph.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.filtering.artifacts import (
    ArtifactsFormatError,
    DataArtifacts,
    dumps_artifacts,
    loads_artifacts,
)
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.io import graph_checksum, save_graph, saves_graph
from repro.matching.limits import SearchLimits
from repro.service.catalog import (
    ARTIFACTS_FILE,
    GRAPH_FILE,
    META_FILE,
    CatalogError,
    GraphCatalog,
)
from repro.workload.querygen import generate_query

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def instance():
    data = powerlaw_cluster_graph(70, 3, 0.3, num_labels=3, seed=17)
    queries = [generate_query(data, 6, "sparse", seed=18 + i) for i in range(2)]
    return data, queries


def assert_matches_direct(engine, data, queries):
    direct = GuPEngine(data)
    limits = SearchLimits(max_embeddings=500)
    for query in queries:
        a = direct.match(query, limits=limits)
        b = engine.match(query, limits=limits)
        assert b.embeddings == a.embeddings
        assert b.num_embeddings == a.num_embeddings
        assert b.status == a.status


class TestArtifactsSerialization:
    def test_roundtrip_no_rebuild(self, instance):
        data, queries = instance
        blob = dumps_artifacts(DataArtifacts(data))
        before = DataArtifacts.builds_performed
        restored = loads_artifacts(blob, data)
        assert DataArtifacts.builds_performed == before
        assert restored.degrees == tuple(data.degree(v) for v in data.vertices())
        for query in queries:
            assert restored.nlf_candidates(query) == DataArtifacts(
                data
            ).nlf_candidates(query)

    def test_rejects_wrong_graph(self, instance):
        data, _ = instance
        other = powerlaw_cluster_graph(40, 3, 0.3, num_labels=3, seed=99)
        blob = dumps_artifacts(DataArtifacts(data))
        with pytest.raises(ArtifactsFormatError):
            loads_artifacts(blob, other)

    @pytest.mark.parametrize("mutation", ["truncate", "flip", "garbage"])
    def test_rejects_corrupt_blob(self, instance, mutation):
        data, _ = instance
        blob = dumps_artifacts(DataArtifacts(data))
        if mutation == "truncate":
            blob = blob[: len(blob) // 2]
        elif mutation == "flip":
            blob = blob[:10] + bytes([blob[10] ^ 0xFF]) + blob[11:]
        else:
            blob = b"not a pickle at all"
        with pytest.raises(ArtifactsFormatError):
            loads_artifacts(blob, data)


class TestCatalogBasics:
    def test_add_persists_layout(self, instance, tmp_path):
        data, queries = instance
        catalog = GraphCatalog(tmp_path / "cat")
        info = catalog.add("g", data)
        entry = tmp_path / "cat" / "g"
        assert (entry / GRAPH_FILE).exists()
        assert (entry / ARTIFACTS_FILE).exists()
        assert (entry / META_FILE).exists()
        assert info["graph_checksum"] == graph_checksum(data)
        assert catalog.names() == ["g"]
        assert_matches_direct(catalog.engine("g"), data, queries)

    def test_add_identical_is_noop_different_needs_overwrite(
        self, instance, tmp_path
    ):
        data, _ = instance
        other = powerlaw_cluster_graph(30, 3, 0.3, num_labels=2, seed=3)
        catalog = GraphCatalog(tmp_path / "cat")
        catalog.add("g", data)
        builds = catalog.counters["artifact_builds"]
        catalog.add("g", data)  # identical: no-op
        assert catalog.counters["artifact_builds"] == builds
        with pytest.raises(CatalogError):
            catalog.add("g", other)
        catalog.add("g", other, overwrite=True)
        assert catalog.info("g")["graph_checksum"] == graph_checksum(other)

    def test_invalid_names_rejected(self, tmp_path):
        catalog = GraphCatalog(tmp_path / "cat")
        for bad in ("../escape", "", ".hidden", "a/b", "a b"):
            with pytest.raises(CatalogError):
                catalog.engine(bad)

    def test_unknown_entry(self, tmp_path):
        with pytest.raises(CatalogError):
            GraphCatalog(tmp_path / "cat").engine("nope")

    def test_engine_lru(self, instance, tmp_path):
        data, _ = instance
        small = powerlaw_cluster_graph(20, 2, 0.2, num_labels=2, seed=8)
        catalog = GraphCatalog(tmp_path / "cat", max_resident=1)
        catalog.add("a", data)
        catalog.add("b", small)
        assert catalog.counters["engine_evictions"] >= 1
        engine = catalog.engine("b")
        assert catalog.engine("b") is engine  # hit
        catalog.engine("a")  # evicts b
        assert catalog.engine("b") is not engine
        assert catalog.counters["engine_hits"] >= 1
        assert catalog.counters["engine_misses"] >= 2


class TestCatalogDurability:
    def test_reload_uses_disk_artifacts(self, instance, tmp_path):
        data, queries = instance
        GraphCatalog(tmp_path / "cat").add("g", data)
        reopened = GraphCatalog(tmp_path / "cat")
        before = DataArtifacts.builds_performed
        engine = reopened.engine("g")
        assert DataArtifacts.builds_performed == before, "load must not build"
        assert reopened.counters["artifact_loads"] == 1
        assert reopened.counters["artifact_rebuilds"] == 0
        assert_matches_direct(engine, data, queries)

    def test_subprocess_round_trip(self, instance, tmp_path):
        """Artifacts written here are loaded — not rebuilt — by a fresh
        process, and serve byte-identical results."""
        data, queries = instance
        GraphCatalog(tmp_path / "cat").add("g", data)
        script = """
import json, sys
from repro.filtering.artifacts import DataArtifacts
from repro.graph.io import loads_graph
from repro.matching.limits import SearchLimits
from repro.service.catalog import GraphCatalog

catalog = GraphCatalog(sys.argv[1])
engine = catalog.engine("g")
query = loads_graph(sys.stdin.read())
result = engine.match(query, limits=SearchLimits(max_embeddings=500))
print(json.dumps({
    "embeddings": result.embeddings,
    "num": result.num_embeddings,
    "status": result.status.value,
    "loads": catalog.counters["artifact_loads"],
    "rebuilds": catalog.counters["artifact_rebuilds"],
    "builds_in_process": DataArtifacts.builds_performed,
}))
"""
        query = queries[0]
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "cat")],
            input=saves_graph(query),
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        assert proc.returncode == 0, proc.stderr
        reply = json.loads(proc.stdout)
        direct = GuPEngine(data).match(
            query, limits=SearchLimits(max_embeddings=500)
        )
        assert [tuple(e) for e in reply["embeddings"]] == direct.embeddings
        assert reply["num"] == direct.num_embeddings
        assert reply["status"] == direct.status.value
        assert reply["loads"] == 1
        assert reply["rebuilds"] == 0
        assert reply["builds_in_process"] == 0

    @pytest.mark.parametrize(
        "corruption",
        ["truncate_artifacts", "flip_artifacts", "delete_artifacts",
         "corrupt_meta", "delete_meta", "stale_graph"],
    )
    def test_corruption_triggers_rebuild_not_crash(
        self, instance, tmp_path, corruption
    ):
        data, queries = instance
        root = tmp_path / "cat"
        GraphCatalog(root).add("g", data)
        entry = root / "g"
        artifacts = entry / ARTIFACTS_FILE
        if corruption == "truncate_artifacts":
            artifacts.write_bytes(artifacts.read_bytes()[:20])
        elif corruption == "flip_artifacts":
            blob = bytearray(artifacts.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            artifacts.write_bytes(bytes(blob))
        elif corruption == "delete_artifacts":
            artifacts.unlink()
        elif corruption == "corrupt_meta":
            (entry / META_FILE).write_text("{ not json", encoding="utf-8")
        elif corruption == "delete_meta":
            (entry / META_FILE).unlink()
        else:  # stale_graph: the graph file changed under the sidecar
            smaller = powerlaw_cluster_graph(25, 2, 0.2, num_labels=2, seed=4)
            save_graph(smaller, entry / GRAPH_FILE)
            data, queries = smaller, [
                generate_query(smaller, 4, "sparse", seed=1)
            ]
        catalog = GraphCatalog(root)
        engine = catalog.engine("g")
        assert catalog.counters["artifact_rebuilds"] == 1
        assert catalog.counters["artifact_loads"] == 0
        assert_matches_direct(engine, data, queries)
        # The rebuild rewrote the store: a fresh catalog loads cleanly.
        after = GraphCatalog(root)
        after.engine("g")
        assert after.counters["artifact_loads"] == 1
        assert after.counters["artifact_rebuilds"] == 0

    def test_old_artifact_format_version_rebuilds_cleanly(
        self, instance, tmp_path
    ):
        """A sidecar + blob written at the *previous* artifact format
        version (v1: no build-path bitmaps) is stale, not corrupt: the
        load rebuilds from the graph (counter increments), never
        crashes, never silently reuses the old payload."""
        import hashlib
        import pickle

        data, queries = instance
        root = tmp_path / "cat"
        GraphCatalog(root).add("g", data)
        entry = root / "g"

        # Forge a faithful v1-era store: the pre-bitmap payload shape
        # with a consistent sidecar (correct sha256, old version tags).
        fresh = DataArtifacts(data)
        v1_payload = (
            1,
            data.num_vertices,
            data.num_edges,
            fresh.degrees,
            fresh.label_buckets,
            [data.neighbor_label_frequency(v) for v in data.vertices()],
        )
        blob = pickle.dumps(v1_payload, protocol=pickle.HIGHEST_PROTOCOL)
        (entry / ARTIFACTS_FILE).write_bytes(blob)
        meta = json.loads((entry / META_FILE).read_text(encoding="utf-8"))
        meta["artifacts_format_version"] = 1
        meta["artifacts_sha256"] = hashlib.sha256(blob).hexdigest()
        (entry / META_FILE).write_text(json.dumps(meta), encoding="utf-8")

        # The direct loader rejects the stale version outright ...
        with pytest.raises(ArtifactsFormatError, match="version"):
            loads_artifacts(blob, data)

        # ... and the catalog turns that into one clean rebuild.
        catalog = GraphCatalog(root)
        engine = catalog.engine("g")
        assert catalog.counters["artifact_rebuilds"] == 1
        assert catalog.counters["artifact_loads"] == 0
        assert_matches_direct(engine, data, queries)
        # The rebuild rewrote blob + sidecar at the current version: a
        # fresh catalog now loads cleanly with zero rebuilds.
        after = GraphCatalog(root)
        after.engine("g")
        assert after.counters["artifact_loads"] == 1
        assert after.counters["artifact_rebuilds"] == 0

    def test_unparseable_graph_is_an_error(self, instance, tmp_path):
        data, _ = instance
        root = tmp_path / "cat"
        GraphCatalog(root).add("g", data)
        (root / "g" / GRAPH_FILE).write_text("v broken", encoding="utf-8")
        with pytest.raises(CatalogError):
            GraphCatalog(root).engine("g")

    def test_warm_verifies_disk_state(self, instance, tmp_path):
        data, _ = instance
        root = tmp_path / "cat"
        catalog = GraphCatalog(root)
        catalog.add("g", data)
        assert catalog.warm("g") is False  # store valid, nothing rebuilt
        (root / "g" / ARTIFACTS_FILE).write_bytes(b"junk")
        assert catalog.warm("g") is True
        assert GraphCatalog(root).warm("g") is False


class TestMaskBackendCanonicalStore:
    """The artifacts sidecar is backend-agnostic (DESIGN.md §11): masks
    at rest are canonical Python ints, so which ``mask_backend`` built —
    or warmed — the artifacts must not leak into the stored bytes, and a
    payload that *does* carry lowered word arrays is corrupt."""

    def test_sidecar_bytes_identical_across_backends(self, instance, tmp_path):
        data, queries = instance
        stores = {}
        for backend in ("int", "words"):
            root = tmp_path / backend
            catalog = GraphCatalog(root, config=GuPConfig(mask_backend=backend))
            catalog.add("g", data)
            # Warm the engine through real matches so backend-specific
            # derived caches (mask ladders, lowered adjacency ops) exist
            # before the live artifacts are re-serialized.
            engine = catalog.engine("g")
            for query in queries:
                engine.match(query, limits=SearchLimits(max_embeddings=100))
            meta = json.loads(
                (root / "g" / META_FILE).read_text(encoding="utf-8")
            )
            stores[backend] = {
                "disk": (root / "g" / ARTIFACTS_FILE).read_bytes(),
                "checksum": meta["artifacts_sha256"],
                "warm_dump": dumps_artifacts(engine.artifacts),
            }
        assert stores["int"]["disk"] == stores["words"]["disk"]
        assert stores["int"]["checksum"] == stores["words"]["checksum"]
        # Re-serializing the warmed live artifacts reproduces the disk
        # bytes exactly — derived caches never reach the payload.
        for backend in ("int", "words"):
            assert stores[backend]["warm_dump"] == stores[backend]["disk"]

    def test_sidecar_loads_under_the_other_backend(self, instance, tmp_path):
        data, queries = instance
        root = tmp_path / "cat"
        GraphCatalog(root, config=GuPConfig(mask_backend="words")).add(
            "g", data
        )
        for backend in ("int", "words"):
            catalog = GraphCatalog(root, config=GuPConfig(mask_backend=backend))
            engine = catalog.engine("g")
            assert catalog.counters["artifact_loads"] == 1
            assert catalog.counters["artifact_rebuilds"] == 0
            assert_matches_direct(engine, data, queries)

    def test_mixed_width_payload_rejected_then_rebuilt(self, instance, tmp_path):
        """A forged payload whose adjacency bitmaps are ``array('Q')``
        word arrays — the lowered representation a buggy words kernel
        could have leaked to disk — is non-canonical: the loader rejects
        it outright and the catalog recovers with one clean rebuild."""
        import hashlib
        import pickle

        from repro.utils.words import nwords_for, to_words

        data, queries = instance
        root = tmp_path / "cat"
        GraphCatalog(root).add("g", data)
        entry = root / "g"

        payload = list(pickle.loads((entry / ARTIFACTS_FILE).read_bytes()))
        nwords = nwords_for(data.num_vertices)
        payload[7] = tuple(to_words(m, nwords) for m in payload[7])
        forged = pickle.dumps(tuple(payload), protocol=pickle.HIGHEST_PROTOCOL)
        (entry / ARTIFACTS_FILE).write_bytes(forged)
        meta = json.loads((entry / META_FILE).read_text(encoding="utf-8"))
        meta["artifacts_sha256"] = hashlib.sha256(forged).hexdigest()
        (entry / META_FILE).write_text(json.dumps(meta), encoding="utf-8")

        with pytest.raises(ArtifactsFormatError, match="canonical int masks"):
            loads_artifacts(forged, data)

        catalog = GraphCatalog(root)
        engine = catalog.engine("g")
        assert catalog.counters["artifact_rebuilds"] == 1
        assert catalog.counters["artifact_loads"] == 0
        assert_matches_direct(engine, data, queries)
