"""Service-side dynamic-graph tests (DESIGN.md §9).

Covers the epoch-versioned catalog ``update``/``remove``, selective
query-cache invalidation (the touched-label rule), the server's
``update`` and ``subscribe`` ops, and the ``repro update`` /
``repro catalog info|remove`` CLI verbs.  The acceptance differential:
after a service update, (a) queries whose labels avoid the delta are
served from the *kept* cache with **zero** artifact builds or rebuilds
— only a patch — and (b) the subscriber event stream carries exactly
the embedding diff of the update.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.engine import GuPEngine
from repro.dynamic.delta import GraphDelta, apply_delta, saves_delta
from repro.filtering.artifacts import DataArtifacts
from repro.graph.builder import graph_from_adjacency
from repro.graph.io import graph_checksum, save_graph
from repro.matching.limits import SearchLimits
from repro.service.catalog import CatalogError, GraphCatalog
from repro.service.client import ServiceClient, ServiceError
from repro.service.qcache import QueryCache
from repro.service.server import ServerThread


def bipartite_world():
    """Two label-disjoint components: A-B path and C-D path."""
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    ab_query = graph_from_adjacency(["A", "B"], [(0, 1)])
    cd_query = graph_from_adjacency(["C", "D"], [(0, 1)])
    return data, ab_query, cd_query


class TestCatalogUpdate:
    def test_epoch_bumps_and_persists(self, tmp_path):
        data, _, _ = bipartite_world()
        catalog = GraphCatalog(tmp_path)
        info = catalog.add("g", data)
        assert info["epoch"] == 1
        delta = GraphDelta(add_edges=((0, 3),))
        info, summary = catalog.update("g", delta)
        assert info["epoch"] == 2
        assert summary.added_edges == ((0, 3),)
        assert catalog.counters["updates"] == 1
        assert catalog.counters["artifact_patches"] == 1

        # A cold catalog over the same root loads the patched store
        # cleanly: correct graph, correct epoch, zero rebuilds.
        cold = GraphCatalog(tmp_path)
        engine = cold.engine("g")
        assert engine.data.has_edge(0, 3)
        assert cold.info("g")["epoch"] == 2
        assert cold.counters["artifact_loads"] == 1
        assert cold.counters["artifact_rebuilds"] == 0
        assert cold.counters["artifact_builds"] == 0

    def test_update_unknown_entry_raises(self, tmp_path):
        catalog = GraphCatalog(tmp_path)
        with pytest.raises(CatalogError, match="unknown"):
            catalog.update("nope", GraphDelta())

    def test_update_keeps_invariant_cache(self, tmp_path):
        data, ab_query, _ = bipartite_world()
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", data)
        engine = catalog.engine("g")
        engine.match(ab_query, limits=SearchLimits())
        invariants = engine.invariants
        recomputes = invariants.recomputes
        assert recomputes > 0
        catalog.update("g", GraphDelta(add_edges=((3, 5),)))
        updated = catalog.engine("g")
        assert updated.invariants is invariants
        # The CD-side delta leaves the AB query's candidate masks
        # unchanged, so a warm re-match recomputes nothing.
        updated.match(ab_query, limits=SearchLimits())
        assert updated.invariants.recomputes == recomputes

    def test_remove_and_info(self, tmp_path):
        data, _, _ = bipartite_world()
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", data)
        assert catalog.names() == ["g"]
        catalog.remove("g")
        assert catalog.names() == []
        assert catalog.counters["removes"] == 1
        with pytest.raises(CatalogError, match="unknown"):
            catalog.remove("g")
        with pytest.raises(CatalogError, match="unknown"):
            catalog.info("g")

    def test_checksum_cached_on_graph_instance(self):
        data, _, _ = bipartite_world()
        assert data._checksum is None
        first = graph_checksum(data)
        assert data._checksum == first
        assert graph_checksum(data) == first


class TestQueryCacheInvalidation:
    def test_touched_label_rule(self):
        data, ab_query, cd_query = bipartite_world()
        engine = GuPEngine(data)
        cache = QueryCache()
        limits = SearchLimits()
        for query in (ab_query, cd_query):
            _, form = cache.lookup(query, limits)
            cache.store(form, limits, engine.match(query, limits=limits))
        assert len(cache) == 2
        kept, evicted = cache.invalidate_labels(frozenset({"C", "D"}))
        assert (kept, evicted) == (1, 1)
        assert cache.counters["delta_kept"] == 1
        assert cache.counters["delta_evicted"] == 1
        hit, _ = cache.lookup(ab_query, limits)
        assert hit is not None
        miss, _ = cache.lookup(cd_query, limits)
        assert miss is None

    def test_disjoint_labels_keep_everything(self):
        data, ab_query, _ = bipartite_world()
        engine = GuPEngine(data)
        cache = QueryCache()
        limits = SearchLimits()
        _, form = cache.lookup(ab_query, limits)
        cache.store(form, limits, engine.match(ab_query, limits=limits))
        kept, evicted = cache.invalidate_labels(frozenset({"Z"}))
        assert (kept, evicted) == (1, 0)


@pytest.fixture()
def dynamic_service(tmp_path):
    data, _, _ = bipartite_world()
    root = tmp_path / "catalog"
    GraphCatalog(root).add("g", data)
    catalog = GraphCatalog(root)  # cold start
    with ServerThread(catalog, max_inflight=2, max_pending=8) as thread:
        yield thread


class TestServerUpdate:
    def test_untouched_queries_stay_warm_through_update(
        self, dynamic_service
    ):
        data, ab_query, cd_query = bipartite_world()
        with ServiceClient(*dynamic_service.address) as client:
            for query in (ab_query, cd_query):
                assert client.query(query, "g").cache == "miss"
            base = client.stats()
            assert base["catalog"]["artifact_loads"] == 1

            # Delta entirely on the C/D side of the graph.
            reply = client.update(
                "g", GraphDelta(add_vertices=("D",), add_edges=((3, 6),))
            )
            assert reply.epoch == 2
            assert reply.qcache_kept == 1
            assert reply.qcache_evicted == 1

            # AB: kept entry serves a hit; CD: evicted, re-runs and sees
            # the new match.  Neither path builds or rebuilds artifacts
            # — the update only *patched*.
            ab = client.query(ab_query, "g")
            assert ab.cache == "hit"
            cd = client.query(cd_query, "g")
            assert cd.cache == "miss"
            assert sorted(cd.embeddings) == [(3, 4), (3, 6), (5, 4)]

            stats = client.stats()
            assert stats["catalog"]["artifact_patches"] == 1
            assert stats["catalog"]["artifact_builds"] == 0
            assert stats["catalog"]["artifact_rebuilds"] == 0
            assert (
                stats["artifact_builds_in_process"]
                == base["artifact_builds_in_process"]
            ), "service update must never rebuild DataArtifacts"
            assert stats["server"]["updates"] == 1

            # Served results equal a direct engine run on the updated
            # graph (the differential part of the acceptance).
            new_data, _ = apply_delta(
                data, GraphDelta(add_vertices=("D",), add_edges=((3, 6),))
            )
            direct = GuPEngine(new_data).match(cd_query, limits=SearchLimits())
            assert sorted(cd.embeddings) == sorted(
                tuple(e) for e in direct.embeddings
            )

    def test_update_is_durable_across_restart(self, tmp_path):
        data, _, cd_query = bipartite_world()
        root = tmp_path / "catalog"
        GraphCatalog(root).add("g", data)
        catalog = GraphCatalog(root)
        with ServerThread(catalog) as thread:
            with ServiceClient(*thread.address) as client:
                client.update("g", GraphDelta(remove_edges=((3, 4),)))

        restarted = GraphCatalog(root)
        with ServerThread(restarted) as thread:
            with ServiceClient(*thread.address) as client:
                reply = client.query(cd_query, "g")
                assert reply.embeddings == [(5, 4)]
                stats = client.stats()
                assert stats["catalog"]["artifact_loads"] == 1
                assert stats["catalog"]["artifact_rebuilds"] == 0

    def test_bad_deltas_are_rejected_cleanly(self, dynamic_service):
        with ServiceClient(*dynamic_service.address) as client:
            with pytest.raises(ServiceError, match="does not exist"):
                client.update("g", GraphDelta(remove_edges=((0, 5),)))
            with pytest.raises(ServiceError, match="unknown catalog entry"):
                client.update("nope", GraphDelta())
            with pytest.raises(ServiceError, match="needs 'name'"):
                client.request({"op": "update"})
            # The connection stays usable afterwards.
            assert client.ping()


class TestSubscriptions:
    def test_subscriber_receives_exact_diffs(self, dynamic_service):
        _, ab_query, _ = bipartite_world()
        with ServiceClient(*dynamic_service.address) as subscriber, \
                ServiceClient(*dynamic_service.address) as updater:
            reply = subscriber.subscribe(ab_query, "g")
            assert reply.epoch == 1
            assert sorted(reply.embeddings) == [(0, 1), (2, 1)]

            out = updater.update(
                "g",
                GraphDelta(add_vertices=("A",), add_edges=((1, 6),)),
            )
            assert out.subscribers_notified == 1
            event = subscriber.next_event(timeout=30)
            assert event["event"] == "delta"
            assert event["subscription"] == reply.subscription
            assert event["epoch"] == 2
            assert event["added"] == [(6, 1)]
            assert event["removed"] == []

            out = updater.update("g", GraphDelta(remove_edges=((0, 1),)))
            event = subscriber.next_event(timeout=30)
            assert event["epoch"] == 3
            assert event["added"] == []
            assert event["removed"] == [(0, 1)]
            assert out.subscribers_notified == 1

    def test_subscription_ends_with_connection(self, dynamic_service):
        _, ab_query, _ = bipartite_world()
        subscriber = ServiceClient(*dynamic_service.address)
        subscriber.subscribe(ab_query, "g")
        subscriber.close()
        with ServiceClient(*dynamic_service.address) as updater:
            for _ in range(20):
                out = updater.update("g", GraphDelta(add_vertices=("B",)))
                if out.subscribers_notified == 0:
                    break
            assert out.subscribers_notified == 0

    def test_subscribe_unknown_entry_errors(self, dynamic_service):
        _, ab_query, _ = bipartite_world()
        with ServiceClient(*dynamic_service.address) as client:
            with pytest.raises(ServiceError, match="unknown catalog entry"):
                client.subscribe(ab_query, "nope")
            assert client.ping()


class TestCli:
    def test_catalog_info_and_remove(self, tmp_path, capsys):
        data, _, _ = bipartite_world()
        graph_path = tmp_path / "g.graph"
        save_graph(data, graph_path)
        root = str(tmp_path / "cat")
        assert cli_main(
            ["catalog", "add", "g", str(graph_path), "--root", root]
        ) == 0
        assert cli_main(["catalog", "info", "g", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "epoch:      1" in out
        assert "vertices:   6" in out
        assert cli_main(["catalog", "remove", "g", "--root", root]) == 0
        assert cli_main(["catalog", "info", "g", "--root", root]) == 1
        assert "unknown catalog entry" in capsys.readouterr().err
        assert cli_main(["catalog", "remove", "g", "--root", root]) == 1

    def test_update_verb_against_live_server(
        self, dynamic_service, tmp_path, capsys
    ):
        host, port = dynamic_service.address
        delta_path = tmp_path / "edit.delta"
        delta_path.write_text(
            saves_delta(GraphDelta(add_vertices=("A",), add_edges=((1, 6),))),
            encoding="utf-8",
        )
        rc = cli_main([
            "update", "g", str(delta_path),
            "--host", host, "--port", str(port),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch 2" in out
        assert "+1 vertices" in out

    def test_update_verb_bad_delta_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.delta"
        bad.write_text("xx nope\n", encoding="utf-8")
        assert cli_main(["update", "g", str(bad)]) == 1
        assert "unknown record" in capsys.readouterr().err
        assert cli_main(["update", "g", str(tmp_path / "missing")]) == 1
