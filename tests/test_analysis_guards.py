"""Tests for the guard-inventory analysis helpers."""

import pytest

from repro.analysis.guards import guard_inventory, run_and_inventory
from repro.core.config import GuPConfig
from repro.core.gcs import build_gcs
from repro.graph.generators import powerlaw_cluster_graph
from repro.workload.paper_example import paper_example_data, paper_example_query
from repro.workload.querygen import generate_query


@pytest.fixture(scope="module")
def hard_gcs():
    data = powerlaw_cluster_graph(60, 3, 0.35, num_labels=4, seed=9)
    query = generate_query(data, 10, "dense", seed=10)
    return build_gcs(query, data)


class TestInventory:
    def test_paper_example(self):
        gcs = build_gcs(paper_example_query(), paper_example_data())
        search, inventory = run_and_inventory(gcs)
        assert inventory.reservations_total == gcs.cs.total_candidates()
        assert inventory.nv_guards == gcs.nogoods.num_vertex_guards
        assert sum(inventory.reservation_size_histogram.values()) == (
            inventory.reservations_total
        )
        assert inventory.prunes_by_kind["injectivity"] == (
            search.stats.pruned_injectivity
        )

    def test_histogram_tracks_store(self, hard_gcs):
        search, inventory = run_and_inventory(hard_gcs)
        assert sum(inventory.nv_dom_histogram.values()) == inventory.nv_guards
        assert inventory.ne_guards == hard_gcs.nogoods.num_edge_guards

    def test_explicit_store_supported(self, hard_gcs):
        search, inventory = run_and_inventory(
            hard_gcs, config=GuPConfig(nogood_representation="explicit")
        )
        assert sum(inventory.nv_dom_histogram.values()) == inventory.nv_guards

    def test_render(self, hard_gcs):
        _search, inventory = run_and_inventory(hard_gcs)
        text = inventory.render()
        assert "reservation guards" in text
        assert "nogood guards" in text
        assert "prunes:" in text

    def test_inventory_without_stats(self):
        gcs = build_gcs(paper_example_query(), paper_example_data())
        inventory = guard_inventory(gcs)
        assert inventory.prunes_by_kind == {}
