"""Unit tests for cycle extraction and hard-query mining."""

import pytest

from repro.baselines.vf2 import Vf2Matcher
from repro.graph.algorithms import is_connected
from repro.graph.builder import GraphBuilder, path_graph
from repro.graph.generators import random_connected_graph
from repro.matching.limits import SearchLimits
from repro.workload.hardness import (
    generate_cycle_query,
    mine_hard_queries,
    probe_hardness,
)
from repro.workload.datasets import load_dataset


@pytest.fixture(scope="module")
def data():
    return random_connected_graph(300, 520, num_labels=3, seed=17)


class TestCycleQueries:
    def test_is_a_cycle(self, data):
        q = generate_cycle_query(data, 6, 12, seed=1)
        assert q is not None
        assert q.num_vertices == q.num_edges  # exactly one cycle
        assert all(q.degree(v) == 2 for v in q.vertices())
        assert 6 <= q.num_vertices <= 12

    def test_satisfiable(self, data):
        q = generate_cycle_query(data, 5, 10, seed=2)
        assert q is not None
        res = Vf2Matcher().match(q, data, SearchLimits(max_embeddings=1))
        assert res.num_embeddings >= 1

    def test_chords_added(self, data):
        q = generate_cycle_query(data, 8, 14, seed=3, chords=2)
        assert q is not None
        assert q.num_edges >= q.num_vertices  # cycle + possibly chords

    def test_none_on_tree(self):
        tree = path_graph("AAAAAA")
        assert generate_cycle_query(tree, 3, 6, seed=1, max_attempts=5) is None

    def test_none_on_empty(self):
        b = GraphBuilder()
        assert generate_cycle_query(b.build(), 3, 6, seed=1) is None

    def test_deterministic(self, data):
        a = generate_cycle_query(data, 6, 12, seed=5)
        b = generate_cycle_query(data, 6, 12, seed=5)
        assert a == b


class TestProbe:
    def test_probe_is_bounded(self, data):
        q = generate_cycle_query(data, 6, 12, seed=4)
        score = probe_hardness(q, data, probe_recursions=500)
        assert 0 <= score <= 500

    def test_trivial_query_scores_low(self, data):
        q = path_graph([data.label(0), data.label(1)]) if data.has_edge(0, 1) else None
        from repro.workload.querygen import generate_query

        easy = generate_query(data, 3, "sparse", seed=9)
        assert probe_hardness(easy, data, probe_recursions=5000) < 5000


class TestMining:
    def test_returns_count_connected_satisfiable(self, data):
        mined = mine_hard_queries(
            data, count=3, size=10, seed=21, candidate_factor=4,
            probe_recursions=1_000,
        )
        assert len(mined) == 3
        for q in mined:
            assert is_connected(q)
            res = Vf2Matcher().match(q, data, SearchLimits(max_embeddings=1))
            assert res.num_embeddings >= 1

    def test_hardest_first(self, data):
        mined = mine_hard_queries(
            data, count=4, size=10, seed=22, candidate_factor=4,
            probe_recursions=1_000,
        )
        scores = [probe_hardness(q, data, probe_recursions=1_000) for q in mined]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self, data):
        a = mine_hard_queries(data, count=2, size=8, seed=23, candidate_factor=3)
        b = mine_hard_queries(data, count=2, size=8, seed=23, candidate_factor=3)
        assert a == b

    def test_mined_harder_than_random(self, data):
        """Mining must beat the average random query on its own metric."""
        from repro.workload.querygen import generate_query

        mined = mine_hard_queries(
            data, count=2, size=12, seed=25, candidate_factor=6,
            probe_recursions=2_000,
        )
        mined_score = min(
            probe_hardness(q, data, probe_recursions=2_000) for q in mined
        )
        random_scores = [
            probe_hardness(
                generate_query(data, 12, "sparse", seed=100 + i),
                data,
                probe_recursions=2_000,
            )
            for i in range(5)
        ]
        avg_random = sum(random_scores) / len(random_scores)
        assert mined_score >= avg_random
