"""Unit tests for the benchmark harness (runner, stats, report, memory)."""

import pytest

from repro.baselines.registry import get_matcher
from repro.bench.memory import measure_memory
from repro.bench.report import format_bar_chart, format_grouped_bars, format_table
from repro.bench.runner import (
    BenchmarkScale,
    QueryRunRecord,
    QuerySetResult,
    run_methods_on_set,
    run_query_set,
)
from repro.bench.stats import (
    average_time_with_timeouts,
    finished_counts,
    finished_matrix,
    geometric_mean,
    threshold_counts,
    total_recursions,
)
from repro.matching.result import TerminationStatus
from repro.workload.datasets import load_dataset
from repro.workload.querygen import QuerySetSpec, generate_query_set


@pytest.fixture(scope="module")
def tiny_workload():
    data = load_dataset("yeast", scale=0.5, seed=3)
    queries = generate_query_set(data, QuerySetSpec(6, "sparse"), count=6, seed=4)
    return data, queries


def record(seconds, status=TerminationStatus.COMPLETE, recursions=10):
    return QueryRunRecord(
        index=0,
        seconds=seconds,
        status=status,
        embeddings=1,
        recursions=recursions,
        futile_recursions=recursions // 2,
    )


class TestRunner:
    def test_runs_all_queries(self, tiny_workload):
        data, queries = tiny_workload
        result = run_query_set(
            get_matcher("GuP"), data, queries,
            scale=BenchmarkScale(subgroup_budget=60.0),
            set_name="6S",
        )
        assert not result.dnf
        assert len(result.records) == len(queries)
        assert result.set_name == "6S"
        assert result.method == "GuP"

    def test_dnf_on_tiny_budget(self, tiny_workload):
        data, queries = tiny_workload
        scale = BenchmarkScale(subgroup_budget=0.0, subgroup_size=3)
        result = run_query_set(get_matcher("GuP"), data, queries, scale=scale)
        assert result.dnf
        assert result.queries_attempted < len(queries) or result.dnf

    def test_run_methods_on_set(self, tiny_workload):
        data, queries = tiny_workload
        results = run_methods_on_set(
            [get_matcher("GuP"), get_matcher("DAF")],
            data,
            queries[:3],
            scale=BenchmarkScale(subgroup_budget=60.0),
            set_name="x",
        )
        assert [r.method for r in results] == ["GuP", "DAF"]

    def test_times_clamping(self):
        r = QuerySetResult(method="m", set_name="s")
        r.records = [record(0.5), record(9.9, TerminationStatus.TIMEOUT)]
        assert r.times() == [0.5, 9.9]
        assert r.times(clamp_timeouts_to=5.0) == [0.5, 5.0]


class TestStats:
    def test_threshold_counts(self):
        records = [
            record(0.05),
            record(0.5),
            record(2.0),
            record(99.0, TerminationStatus.TIMEOUT),
        ]
        counts = threshold_counts(records, (0.1, 1.0, 5.0), clamp_timeouts_to=5.0)
        assert counts == {0.1: 3, 1.0: 2, 5.0: 1}

    def test_average_with_timeouts(self):
        r = QuerySetResult(method="m", set_name="s")
        r.records = [record(1.0), record(100.0, TerminationStatus.TIMEOUT)]
        assert average_time_with_timeouts(r, clamp_timeouts_to=3.0) == 2.0

    def test_total_recursions(self):
        r = QuerySetResult(method="m", set_name="s")
        r.records = [record(1.0, recursions=5), record(1.0, recursions=7)]
        assert total_recursions(r) == 12
        assert r.total_futile() == 2 + 3

    def test_finished_matrix_and_counts(self):
        a = QuerySetResult(method="GuP", set_name="8S")
        b = QuerySetResult(method="GuP", set_name="8D", dnf=True)
        c = QuerySetResult(method="DAF", set_name="8S", dnf=True)
        matrix = finished_matrix([a, b, c])
        assert matrix["GuP"] == {"8S": True, "8D": False}
        assert finished_counts([a, b, c]) == {"GuP": 1, "DAF": 0}

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0


class TestReport:
    def test_table_alignment(self):
        out = format_table(["a", "long"], [[1, 2], ["xx", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "long" in lines[2]
        assert len(lines) == 6

    def test_bar_chart(self):
        out = format_bar_chart({"GuP": 10, "DAF": 100}, title="recs", log=True)
        assert "GuP" in out and "#" in out

    def test_bar_chart_empty(self):
        assert "(no data)" in format_bar_chart({})

    def test_grouped(self):
        out = format_grouped_bars({"16S": {"GuP": 1.0}}, title="fig")
        assert "16S" in out


class TestMemory:
    def test_measure_paper_example(self, paper_query, paper_data):
        report = measure_memory(paper_query, paper_data)
        assert report.whole_bytes > 0
        assert report.reservation_bytes > 0
        assert 0.0 <= report.guard_fraction < 1.0
        row = report.row()
        assert set(row) == {
            "whole", "reservation", "nogood_vertices", "nogood_edges",
            "guard/whole",
        }
