"""Unit tests for graph algorithms (k-core, BFS, components, ...)."""

import pytest

from repro.graph.builder import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.algorithms import (
    bfs_levels,
    bfs_order,
    connected_components,
    core_numbers,
    degeneracy_order,
    is_connected,
    k_core_vertices,
    triangle_count,
    two_core_edges,
)


def tadpole():
    """Triangle with a 2-edge tail: mixes 2-core and forest parts."""
    b = GraphBuilder()
    b.add_vertices("XXXXX")
    b.add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    return b.build()


class TestBfs:
    def test_order_starts_at_root(self):
        g = path_graph("ABCD")
        assert bfs_order(g, 2)[0] == 2

    def test_order_visits_component(self):
        g = tadpole()
        assert sorted(bfs_order(g, 4)) == [0, 1, 2, 3, 4]

    def test_levels(self):
        g = path_graph("ABCD")
        assert bfs_levels(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_levels_unreachable_absent(self):
        b = GraphBuilder()
        b.add_vertices("AB")
        g = b.build()
        assert bfs_levels(g, 0) == {0: 0}


class TestComponents:
    def test_single_component(self):
        assert connected_components(tadpole()) == [[0, 1, 2, 3, 4]]

    def test_multiple_sorted_by_size(self):
        b = GraphBuilder()
        b.add_vertices("AAAAA")
        b.add_edges([(0, 1), (1, 2)])
        comps = connected_components(b.build())
        assert comps[0] == [0, 1, 2]
        assert len(comps) == 3

    def test_is_connected(self):
        assert is_connected(tadpole())
        b = GraphBuilder()
        b.add_vertices("AB")
        assert not is_connected(b.build())

    def test_empty_graph_connected(self):
        b = GraphBuilder()
        assert is_connected(b.build())


class TestCores:
    def test_path_core_numbers(self):
        assert core_numbers(path_graph("ABCD")) == [1, 1, 1, 1]

    def test_complete_core_numbers(self):
        assert core_numbers(complete_graph("ABCD")) == [3, 3, 3, 3]

    def test_tadpole_core_numbers(self):
        # Triangle vertices are 2-core; the tail is 1-core.
        assert core_numbers(tadpole()) == [2, 2, 2, 1, 1]

    def test_star_core_numbers(self):
        assert core_numbers(star_graph("C", "AAAA")) == [1, 1, 1, 1, 1]

    def test_k_core_vertices(self):
        assert k_core_vertices(tadpole(), 2) == {0, 1, 2}
        assert k_core_vertices(tadpole(), 1) == {0, 1, 2, 3, 4}
        assert k_core_vertices(tadpole(), 3) == set()

    def test_two_core_edges_exclude_tail(self):
        # GuP's NE guards live only on these edges (§3.3.3).
        assert two_core_edges(tadpole()) == {(0, 1), (1, 2), (0, 2)}

    def test_two_core_of_tree_is_empty(self):
        assert two_core_edges(path_graph("ABCDE")) == set()

    def test_core_numbers_empty(self):
        b = GraphBuilder()
        assert core_numbers(b.build()) == []

    def test_core_matches_peeling_oracle(self, rng):
        from repro.graph.generators import erdos_renyi_graph

        for _ in range(20):
            g = erdos_renyi_graph(
                rng.randint(1, 25), rng.randint(0, 40), seed=rng.randint(0, 10**9)
            )
            core = core_numbers(g)
            for k in range(0, 6):
                # Oracle: iteratively peel vertices of degree < k.
                alive = set(g.vertices())
                changed = True
                while changed:
                    changed = False
                    for v in list(alive):
                        if sum(1 for w in g.neighbors(v) if w in alive) < k:
                            alive.discard(v)
                            changed = True
                expected = alive
                assert {v for v in g.vertices() if core[v] >= k} == expected


class TestDegeneracyAndTriangles:
    def test_degeneracy_order_is_permutation(self):
        g = tadpole()
        assert sorted(degeneracy_order(g)) == list(g.vertices())

    def test_triangle_count(self):
        assert triangle_count(complete_graph("ABCD")) == 4
        assert triangle_count(tadpole()) == 1
        assert triangle_count(path_graph("ABCD")) == 0
