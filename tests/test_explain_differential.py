"""EXPLAIN/ANALYZE differential proofs and span-tree integration.

The load-bearing invariant of `repro.obs.explain`: introspection may
add time, never change results.  The grid below proves an analyzed run
byte-identical (embeddings, SearchStats, status) to a plain match
across both candidate backends, both mask backends, and the procpool —
the combinations whose code paths actually differ.  Alongside: plan
reports without running search, qcache ``peek`` never perturbing the
cache, the versioned ``analyze.json`` sidecar's bounds, and a served
query's causal span tree reconstructed from the request log.
"""

import json

import pytest

from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.graph.builder import graph_from_adjacency
from repro.matching.limits import SearchLimits
from repro.obs import Observability, StructuredLog
from repro.obs.explain import (
    ANALYZE_SIDECAR_MAX_RECORDS,
    ANALYZE_SIDECAR_VERSION,
    sidecar_record,
)
from repro.obs.spans import (
    build_chrome_trace,
    children_of,
    spans_for_trace,
    validate_span_tree,
)
from repro.service.catalog import CatalogError, GraphCatalog
from repro.service.client import ServiceClient
from repro.service.qcache import QueryCache
from repro.service.server import ServerThread
from repro.workload.datasets import load_dataset
from repro.workload.querygen import generate_query


@pytest.fixture(scope="module")
def world():
    data = load_dataset("wordnet", scale=0.1, seed=11)
    query = generate_query(data, 6, "sparse", seed=11)
    return data, query


def tiny_world():
    data = graph_from_adjacency(
        ["A", "B", "A", "C", "D", "C"],
        [(0, 1), (1, 2), (3, 4), (4, 5)],
    )
    query = graph_from_adjacency(["A", "B"], [(0, 1)])
    return data, query


class TestAnalyzeDifferential:
    """analyze == plain match, across every backend combination."""

    @pytest.mark.parametrize("candidate_backend", ["bitmap", "list"])
    @pytest.mark.parametrize("mask_backend", ["int", "words"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_grid(self, world, candidate_backend, mask_backend, workers):
        data, query = world
        config = GuPConfig(
            candidate_backend=candidate_backend, mask_backend=mask_backend
        )
        limits = SearchLimits(max_embeddings=50)
        plain = GuPEngine(data, config=config).match(
            query, limits=limits, workers=workers
        )
        report, analyzed = GuPEngine(data, config=config).explain(
            query, mode="analyze", limits=limits, workers=workers
        )
        assert analyzed.embeddings == plain.embeddings
        assert analyzed.num_embeddings == plain.num_embeddings
        assert analyzed.stats == plain.stats
        assert analyzed.status == plain.status
        # The report attributes that very run, not a parallel one.
        assert report["mode"] == "analyze"
        assert report["result"]["num_embeddings"] == plain.num_embeddings
        assert report["search"]["recursions"] == plain.stats.recursions
        assert report["backend"] == {
            "candidate": candidate_backend,
            "build": config.build_backend,
            "mask": mask_backend,
        }
        if workers > 1:
            assert len(report["tasks"]) >= 1
            # Each root partition searches up to the cap before the
            # deterministic merge truncates, so the per-task total
            # bounds the merged count from above.
            assert (
                sum(t["embeddings_found"] for t in report["tasks"])
                >= plain.num_embeddings
            )
        else:
            assert report["tasks"] == []

    def test_plan_runs_no_search(self, world):
        data, query = world
        report, result = GuPEngine(data).explain(query, mode="plan")
        assert result is None
        assert report["mode"] == "plan"
        assert "search" not in report and "result" not in report
        assert report["order"] and len(report["order"]) == query.num_vertices
        assert len(report["vertex_scores"]) == query.num_vertices
        assert {s["stage"] for s in report["stages"]} >= {"seed"}
        assert report["dag"] is not None
        assert report["reservations"]["guards"] >= 0
        assert report["qcache"] is None

    def test_unknown_mode_rejected(self, world):
        data, query = world
        with pytest.raises(ValueError, match="unknown explain mode"):
            GuPEngine(data).explain(query, mode="verbose")


class TestQueryCachePeek:
    """peek reports the serve decision without perturbing the cache."""

    def test_peek_never_mutates(self):
        data, query = tiny_world()
        cache = QueryCache()
        limits = SearchLimits()
        assert cache.peek(query, limits)["decision"] == "miss"
        result = GuPEngine(data).match(query, limits=limits)
        _, form = cache.lookup(query, limits)
        cache.store(form, limits, result)
        before = dict(cache.counters.snapshot())
        report = cache.peek(query, limits)
        assert report["decision"] == "hit"
        assert report["served"] == "complete"
        assert report["num_embeddings"] == result.num_embeddings
        # No counter moved, no LRU touch, and the real lookup still hits.
        assert dict(cache.counters.snapshot()) == before
        served, _ = cache.lookup(query, limits)
        assert served is not None
        assert served.num_embeddings == result.num_embeddings

    def test_peek_matches_serve_on_caps(self):
        data, query = tiny_world()
        cache = QueryCache()
        full = SearchLimits()
        result = GuPEngine(data).match(query, limits=full)
        _, form = cache.lookup(query, full)
        cache.store(form, full, result)
        capped = SearchLimits(max_embeddings=1)
        report = cache.peek(query, capped)
        served, _ = cache.lookup(query, capped)
        assert (report["decision"] == "hit") == (served is not None)
        assert report["num_embeddings"] == served.num_embeddings


class TestAnalyzeSidecar:
    def test_store_load_roundtrip(self, tmp_path, world):
        data, query = world
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", data)
        report, _ = GuPEngine(data).explain(
            query, mode="analyze", limits=SearchLimits(max_embeddings=5)
        )
        record = sidecar_record(report, trace="t1")
        sidecar = catalog.store_analysis("g", record)
        assert sidecar["version"] == ANALYZE_SIDECAR_VERSION
        loaded = catalog.load_analysis("g")
        assert loaded["version"] == ANALYZE_SIDECAR_VERSION
        assert len(loaded["records"]) == 1
        assert loaded["records"][0]["trace"] == "t1"
        assert loaded["records"][0]["search"]["recursions"] > 0
        # Durable on disk as plain JSON, no tmp left behind.
        path = tmp_path / "g" / "analyze.json"
        assert json.loads(path.read_text(encoding="utf-8")) == loaded
        assert not list((tmp_path / "g").glob("*.tmp"))

    def test_record_bound_drops_oldest(self, tmp_path):
        data, _ = tiny_world()
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", data)
        for i in range(ANALYZE_SIDECAR_MAX_RECORDS + 5):
            catalog.store_analysis("g", {"trace": f"t{i}"})
        loaded = catalog.load_analysis("g")
        assert len(loaded["records"]) == ANALYZE_SIDECAR_MAX_RECORDS
        assert loaded["records"][0]["trace"] == "t5"
        assert loaded["records"][-1]["trace"] == (
            f"t{ANALYZE_SIDECAR_MAX_RECORDS + 4}"
        )

    def test_unknown_entry_rejected(self, tmp_path):
        catalog = GraphCatalog(tmp_path)
        with pytest.raises(CatalogError):
            catalog.store_analysis("ghost", {"trace": "t"})
        with pytest.raises(CatalogError):
            catalog.load_analysis("ghost")

    def test_version_mismatch_resets(self, tmp_path):
        data, _ = tiny_world()
        catalog = GraphCatalog(tmp_path)
        catalog.add("g", data)
        path = tmp_path / "g" / "analyze.json"
        path.write_text(
            json.dumps({"version": 999, "records": [{"trace": "old"}]}),
            encoding="utf-8",
        )
        assert catalog.load_analysis("g")["records"] == []
        catalog.store_analysis("g", {"trace": "new"})
        records = catalog.load_analysis("g")["records"]
        assert [r["trace"] for r in records] == ["new"]


class TestServedSpanTree:
    """One served analyze query leaves an exact causal span tree."""

    def test_round_trip_tree(self, tmp_path):
        data, query = tiny_world()
        log_path = tmp_path / "requests.jsonl"
        obs = Observability(log=StructuredLog(path=str(log_path)))
        catalog_root = tmp_path / "catalog"
        GraphCatalog(catalog_root).add("g", data)
        with ServerThread(GraphCatalog(catalog_root), obs=obs) as thread:
            host, port = thread.address
            with ServiceClient(host, port, log=obs.log) as client:
                plain = client.query(query, "g", workers=2, cache=False)
                reply = client.query(
                    query, "g", workers=2, cache=False, explain="analyze"
                )
        assert reply.embeddings == plain.embeddings
        assert reply.explain["mode"] == "analyze"
        assert reply.cache == "bypass"
        # The background sidecar writer drains on server close: the
        # analyzed query's record must be on disk by now.
        loaded = GraphCatalog(catalog_root).load_analysis("g")
        assert [r["trace"] for r in loaded["records"]] == [reply.trace]

        records = StructuredLog(path=str(log_path)).read_records()
        spans = spans_for_trace(records, reply.trace)
        assert validate_span_tree(spans) == []
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        roots = children_of(spans, None)
        assert [r["name"] for r in roots] == ["client.attempt"]
        request = by_name["server.request"][0]
        assert request["parent"] == roots[0]["span"]
        phases = {r["name"] for r in children_of(spans, request["span"])}
        assert {"server.queue", "engine.search", "server.stream"} <= phases
        search = by_name["engine.search"][0]
        workers = by_name["worker.task"]
        assert len(workers) >= 1
        assert all(w["parent"] == search["span"] for w in workers)
        # Worker intervals nest numerically inside the search phase —
        # monotonic() is one clock across server and worker processes.
        for worker in workers:
            assert worker["t0"] >= search["t0"] - 1e-6
            assert (
                worker["t0"] + worker["dur"]
                <= search["t0"] + search["dur"] + 1e-6
            )

        export = build_chrome_trace(spans)
        assert len(export["traceEvents"]) == len(spans)
        ids = {e["args"]["span"] for e in export["traceEvents"]}
        for event in export["traceEvents"]:
            parent = event["args"].get("parent")
            assert parent is None or parent in ids
        json.dumps(export)  # must be serializable as-is
