"""Unit tests for the baseline matchers and the registry."""

import pytest

from repro.baselines.backtracking import BacktrackingMatcher, ancestor_closures
from repro.baselines.registry import (
    MATCHER_FACTORIES,
    MATCHERS,
    PAPER_METHODS,
    get_matcher,
)
from repro.baselines.vf2 import Vf2Matcher, enumerate_embeddings_bruteforce
from repro.graph.builder import GraphBuilder, cycle_graph, path_graph
from repro.matching.limits import SearchLimits
from repro.matching.result import TerminationStatus
from repro.matching.verify import assert_all_embeddings_valid
from tests.conftest import make_random_pair


class TestVf2:
    def test_paper_example(self, paper_query, paper_data):
        result = Vf2Matcher().match(paper_query, paper_data)
        assert result.num_embeddings == 1

    def test_empty_query(self, two_triangles_data):
        b = GraphBuilder()
        result = Vf2Matcher().match(b.build(), two_triangles_data)
        assert result.embeddings == [()]

    def test_embedding_limit(self):
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        result = Vf2Matcher().match(q, d, SearchLimits(max_embeddings=4))
        assert result.num_embeddings == 4
        assert result.status is TerminationStatus.EMBEDDING_LIMIT

    def test_bruteforce_helper(self, triangle_query, two_triangles_data):
        embs = enumerate_embeddings_bruteforce(triangle_query, two_triangles_data)
        assert sorted(embs) == [(0, 1, 2), (3, 4, 5)]


class TestAncestorClosures:
    def test_path(self):
        q = path_graph("ABC")
        assert ancestor_closures(q) == [0b001, 0b011, 0b111]

    def test_branching(self):
        # u2 adjacent to u0 only: its closure skips u1.
        b = GraphBuilder()
        b.add_vertices("ABC")
        b.add_edges([(0, 1), (0, 2)])
        q = b.build()
        assert ancestor_closures(q) == [0b001, 0b011, 0b101]


class TestBacktrackingMatcher:
    def test_respects_filter_and_order_knobs(self, triangle_query, two_triangles_data):
        for filt in ("ldf", "nlf", "dagdp", "gql"):
            for order in ("vc", "gql", "ri"):
                m = BacktrackingMatcher(
                    name="t", filter_method=filt, ordering=order
                )
                res = m.match(triangle_query, two_triangles_data)
                assert sorted(res.embeddings) == [(0, 1, 2), (3, 4, 5)]

    def test_failing_set_reduces_or_preserves_recursions(self, rng):
        with_fs = without_fs = 0
        for _ in range(20):
            q, d = make_random_pair(rng, max_query=7, max_data=20)
            a = BacktrackingMatcher(name="fs", use_failing_set=True).match(q, d)
            b = BacktrackingMatcher(name="nofs", use_failing_set=False).match(q, d)
            assert a.embedding_set() == b.embedding_set()
            with_fs += a.stats.recursions
            without_fs += b.stats.recursions
        assert with_fs <= without_fs

    def test_empty_query(self, two_triangles_data):
        b = GraphBuilder()
        res = BacktrackingMatcher().match(b.build(), two_triangles_data)
        assert res.embeddings == [()]

    def test_original_numbering(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng)
            res = BacktrackingMatcher(use_failing_set=True).match(q, d)
            assert_all_embeddings_valid(q, d, res.embeddings)


class TestRegistry:
    def test_contains_paper_methods(self):
        assert set(PAPER_METHODS) <= set(MATCHER_FACTORIES)
        assert "VF2" in MATCHERS and "Baseline" in MATCHERS

    def test_get_matcher_names(self):
        for name in MATCHERS:
            assert get_matcher(name).name == name

    def test_unknown_matcher(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            get_matcher("nope")

    @pytest.mark.parametrize("name", sorted(MATCHER_FACTORIES))
    def test_every_matcher_solves_paper_example(self, name, paper_query, paper_data):
        result = get_matcher(name).match(paper_query, paper_data)
        assert result.num_embeddings == 1
        assert result.embeddings == [(1, 4, 7, 10, 0)]

    @pytest.mark.parametrize("name", ["DAF", "GQL-G", "GQL-R", "RM"])
    def test_baselines_handle_limits(self, name):
        q = cycle_graph("XXX")
        d = cycle_graph("XXX")
        res = get_matcher(name).match(q, d, SearchLimits(max_embeddings=3))
        assert res.num_embeddings == 3
        assert res.status is TerminationStatus.EMBEDDING_LIMIT
