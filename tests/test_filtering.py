"""Unit tests for the filtering pipeline (LDF, NLF, DAG, DAG-DP, GQL)."""

import pytest

from repro.baselines.vf2 import enumerate_embeddings_bruteforce
from repro.filtering.candidate_space import build_candidate_space
from repro.filtering.dag import build_query_dag, choose_dag_root
from repro.filtering.dagdp import dag_graph_dp
from repro.filtering.gql_filter import gql_candidates
from repro.filtering.ldf import ldf_candidates
from repro.filtering.nlf import nlf_candidates
from repro.graph.builder import GraphBuilder, cycle_graph, path_graph
from tests.conftest import make_random_pair


class TestLdf:
    def test_label_filtering(self, triangle_query, two_triangles_data):
        c = ldf_candidates(triangle_query, two_triangles_data)
        assert c[0] == [0, 3]  # label A
        assert c[1] == [1, 4]  # label B

    def test_degree_filtering(self):
        q = cycle_graph("AAA")  # every query vertex has degree 2
        b = GraphBuilder()
        b.add_vertices(["A", "A", "A", "A"])
        b.add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])  # v3 has degree 1
        c = ldf_candidates(q, b.build())
        for lst in c:
            assert 3 not in lst

    def test_paper_example_ldf_keeps_v13(self, paper_query, paper_data):
        c = ldf_candidates(paper_query, paper_data)
        assert 13 in c[0]  # only NLF removes it


class TestNlf:
    def test_paper_example(self, paper_query, paper_data):
        """§2.1/§3.1: NLF removes exactly v13 from C(u0)."""
        c = nlf_candidates(paper_query, paper_data)
        assert c[0] == [0, 1]
        assert c[4] == [0, 1, 13]

    def test_respects_base(self, paper_query, paper_data):
        base = [[] for _ in paper_query.vertices()]
        assert nlf_candidates(paper_query, paper_data, base=base) == base

    def test_sound_vs_bruteforce(self, rng):
        for _ in range(25):
            q, d = make_random_pair(rng)
            c = nlf_candidates(q, d)
            for emb in enumerate_embeddings_bruteforce(q, d):
                for i, v in enumerate(emb):
                    assert v in c[i]


class TestQueryDag:
    def test_root_rule(self):
        q = path_graph("ABC")
        # Candidate sizes make vertex 2 most selective per degree.
        root = choose_dag_root(q, [10, 10, 1])
        assert root == 2

    def test_dag_partitions_neighbors(self):
        q = cycle_graph("ABCD")
        dag = build_query_dag(q, [1, 1, 1, 1])
        for u in q.vertices():
            assert sorted(dag.parents[u] + dag.children[u]) == sorted(q.neighbors(u))

    def test_topological_consistency(self):
        q = cycle_graph("ABCDE")
        dag = build_query_dag(q, [3, 1, 4, 1, 5])
        position = {u: i for i, u in enumerate(dag.topological)}
        for u in q.vertices():
            for c in dag.children[u]:
                assert position[u] < position[c]

    def test_disconnected_becomes_forest(self):
        b = GraphBuilder()
        b.add_vertices("ABCD")
        b.add_edges([(0, 1), (2, 3)])
        dag = build_query_dag(b.build(), [1, 1, 1, 1])
        assert sorted(dag.topological) == [0, 1, 2, 3]
        # Every edge is oriented; forest roots have no parents.
        roots = [u for u in range(4) if not dag.parents[u]]
        assert len(roots) == 2


class TestDagDp:
    def test_sound_vs_bruteforce(self, rng):
        for _ in range(25):
            q, d = make_random_pair(rng)
            c = dag_graph_dp(q, d)
            for emb in enumerate_embeddings_bruteforce(q, d):
                for i, v in enumerate(emb):
                    assert v in c[i]

    def test_tightens_nlf(self, rng):
        for _ in range(10):
            q, d = make_random_pair(rng)
            base = nlf_candidates(q, d)
            refined = dag_graph_dp(q, d, base=base)
            for i in q.vertices():
                assert set(refined[i]) <= set(base[i])

    def test_empty_query(self):
        b = GraphBuilder()
        assert dag_graph_dp(b.build(), b.build()) == []


class TestGqlFilter:
    def test_sound_vs_bruteforce(self, rng):
        for _ in range(25):
            q, d = make_random_pair(rng)
            c = gql_candidates(q, d)
            for emb in enumerate_embeddings_bruteforce(q, d):
                for i, v in enumerate(emb):
                    assert v in c[i]

    def test_semi_perfect_matching_prunes(self):
        # Query: center A with two B neighbors.  A data A-vertex with a
        # single B neighbor survives NLF count!=... it has only one B, so
        # NLF already drops it; craft one that passes NLF but fails GQL.
        q = GraphBuilder()
        q.add_vertices(["A", "B", "B"])
        q.add_edges([(0, 1), (0, 2)])
        query = q.build()

        d = GraphBuilder()
        d.add_vertices(["A", "B", "B", "B"])
        # v0 has two B neighbors, but both coincide in candidates; still
        # fine — GQL agrees with NLF here.  The stronger case needs the
        # B-candidates themselves to be filtered.
        d.add_edges([(0, 1), (0, 2)])
        data = d.build()
        c = gql_candidates(query, data)
        assert c[0] == [0]


class TestDataArtifacts:
    """The precomputed data-side artifacts replicate LDF/NLF exactly."""

    def test_matches_ldf_and_nlf_on_random_pairs(self, rng):
        from repro.filtering.artifacts import DataArtifacts

        for _ in range(25):
            query, data = make_random_pair(rng)
            artifacts = DataArtifacts(data)
            assert artifacts.ldf_candidates(query) == ldf_candidates(query, data)
            assert artifacts.nlf_candidates(query) == nlf_candidates(query, data)

    def test_reused_across_queries(self, rng):
        from repro.filtering.artifacts import DataArtifacts

        _, data = make_random_pair(rng)
        artifacts = DataArtifacts(data)
        for _ in range(5):
            query, _ = make_random_pair(rng)
            assert artifacts.nlf_candidates(query) == nlf_candidates(query, data)

    def test_unknown_label_and_empty_graphs(self):
        from repro.filtering.artifacts import DataArtifacts
        from repro.graph.graph import Graph

        data = cycle_graph("AAA")
        artifacts = DataArtifacts(data)
        query = path_graph("Z")  # label absent from the data graph
        assert artifacts.ldf_candidates(query) == [[]]
        empty = Graph([], [])
        assert DataArtifacts(empty).nlf_candidates(empty) == []

    def test_build_gcs_with_artifacts_is_identical(self, rng):
        from repro.core.gcs import build_gcs
        from repro.filtering.artifacts import DataArtifacts

        for _ in range(10):
            query, data = make_random_pair(rng)
            artifacts = DataArtifacts(data)
            plain = build_gcs(query, data)
            cached = build_gcs(query, data, artifacts=artifacts)
            assert cached.order == plain.order
            assert cached.cs.candidates == plain.cs.candidates
            assert cached.reservations == plain.reservations
            assert cached.two_core == plain.two_core

    def test_rejects_foreign_data_graph(self):
        from repro.core.gcs import build_gcs
        from repro.filtering.artifacts import DataArtifacts

        artifacts = DataArtifacts(cycle_graph("AAA"))
        with pytest.raises(ValueError):
            build_gcs(path_graph("AA"), cycle_graph("AAB"), artifacts=artifacts)

    def test_candidate_masks_decode_to_ldf_and_nlf(self, rng):
        """Dense seeding masks == the list filters, bit for bit."""
        from repro.filtering.artifacts import DataArtifacts
        from repro.utils.bitset import bits_of

        for _ in range(25):
            query, data = make_random_pair(rng)
            artifacts = DataArtifacts(data)
            assert [
                bits_of(m) for m in artifacts.ldf_candidate_masks(query)
            ] == ldf_candidates(query, data)
            assert [
                bits_of(m) for m in artifacts.nlf_candidate_masks(query)
            ] == nlf_candidates(query, data)

    def test_nlf2_count_masks_match_filter(self, rng):
        from repro.filtering.artifacts import DataArtifacts
        from repro.filtering.masks import nlf2_candidate_masks
        from repro.filtering.nlf2 import nlf2_candidates
        from repro.utils.bitset import bits_of

        for _ in range(15):
            query, data = make_random_pair(rng)
            artifacts = DataArtifacts(data)
            base = artifacts.nlf_candidate_masks(query)
            got = nlf2_candidate_masks(query, artifacts, base)
            assert [bits_of(m) for m in got] == nlf2_candidates(query, data)

    def test_adjacency_and_label_bitmaps(self):
        from repro.filtering.artifacts import DataArtifacts
        from repro.utils.bitset import bits_of

        data = cycle_graph("ABA")
        artifacts = DataArtifacts(data)
        for v in data.vertices():
            assert bits_of(artifacts.adjacency_bitmaps[v]) == list(
                data.neighbors(v)
            )
        for label in data.label_set:
            assert bits_of(artifacts.label_bitmaps[label]) == list(
                data.vertices_with_label(label)
            )
