"""Build-path perf trajectory: bitmap GCS construction vs the seed set builder.

Runs GCS construction (``GuPEngine.build`` — seeding, filtering,
candidate-edge materialization, reservation generation) with three
backend columns — ``"bitmap"`` (:mod:`repro.filtering.masks`, the
dense-mask default), ``"set"`` (the seed set/dict pipeline kept
verbatim), and ``"words"`` (the bitmap pipeline with
``mask_backend="words"`` — word-array mask kernels, DESIGN.md §11) —
over the fig6/fig7 workload grid (the six query sets of
:data:`benchmarks.conftest.SET_SPECS` on wordnet, easy random-walk bulk
plus the mined hard tail).  Both backends produce byte-identical GCSes
(``tests/test_build_masks.py`` proves it; this bench re-asserts
candidates, candidate-edge counts, and reservations per query), so the
only difference is wall time per construction.

Timings are *warm-path*: engines keep their data-side artifacts and
build-invariant caches across the best-of-N repeats, exactly like the
PR 3 service serving repeated/similar queries — the regime the ISSUE
targets.  Both backends share the same caching, so the ratio compares
the pipelines, not the caches.

Emits ``BENCH_buildpath.json`` at the repo root with, per query set and
overall:

* builds/sec and total candidate/candidate-edge/reservation counts for
  both backends (best-of-N per query);
* the wall-aggregate speedup and the per-query geometric-mean speedup
  (the headline number, target >= 2x);
* a ``smoke`` section from a tiny sub-grid that ``check_perf.py`` uses
  as its regression baseline.

Run: ``python benchmarks/bench_buildpath.py [--repeats N] [--out PATH]``
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import time  # noqa: E402

from benchmarks.conftest import (  # noqa: E402
    SET_SPECS,
    dataset,
    easy_query_set,
    hard_query_set,
)
from repro.core.config import GuPConfig  # noqa: E402
from repro.core.engine import GuPEngine  # noqa: E402

DATASET = "wordnet"  # the fig6/fig7 dataset
BACKENDS = ("set", "bitmap", "words")
FULL_SETS = tuple(SET_SPECS)
SMOKE_SETS = ("8S", "8D")
DEFAULT_OUT = ROOT / "BENCH_buildpath.json"

# Per-column engine configs.  ``mask_backend`` is pinned explicitly so a
# REPRO_MASK_BACKEND override (the CI words matrix job) cannot skew the
# reference columns.  ``"words"`` is the stacked configuration — bitmap
# build pipeline + word-array mask kernels (DESIGN.md §11) — so its
# speedup column reads directly against the seed set builder.
CONFIGS = {
    "set": GuPConfig(build_backend="set", mask_backend="int"),
    "bitmap": GuPConfig(build_backend="bitmap", mask_backend="int"),
    "words": GuPConfig(build_backend="bitmap", mask_backend="words"),
}


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_grid(sets, repeats: int = 5, smoke: bool = False):
    """Measure both build backends over the given query sets.

    Build phase only (``engine.build``), best-of-``repeats`` per query
    to suppress scheduler noise; per query the two backends' GCSes are
    asserted identical (candidates, candidate edges, reservations).
    """
    data = dataset(DATASET)
    engines = {b: GuPEngine(data, CONFIGS[b]) for b in BACKENDS}
    for engine in engines.values():
        engine.artifacts  # prebuild the per-graph artifacts outside timing

    per_set = {}
    totals = {
        b: {"candidates": 0, "candidate_edges": 0, "reservations": 0,
            "wall_seconds": 0.0, "builds": 0}
        for b in BACKENDS
    }
    per_query_speedups = []
    words_speedups = []
    words_vs_int = []

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for set_name in sets:
            queries = easy_query_set(DATASET, set_name)
            if not smoke:
                queries = queries + hard_query_set(DATASET, set_name)
            set_totals = {
                b: {"candidates": 0, "candidate_edges": 0, "reservations": 0,
                    "wall_seconds": 0.0, "builds": 0}
                for b in BACKENDS
            }
            set_speedups = []
            set_words_speedups = []
            for query in queries:
                walls = {}
                gcses = {}
                for backend in BACKENDS:
                    engine = engines[backend]
                    best = None
                    for _ in range(repeats):
                        started = time.perf_counter()
                        gcs = engine.build(query)
                        elapsed = time.perf_counter() - started
                        best = elapsed if best is None else min(best, elapsed)
                    walls[backend] = best
                    gcses[backend] = gcs
                    bucket = set_totals[backend]
                    bucket["candidates"] += gcs.cs.total_candidates()
                    bucket["candidate_edges"] += gcs.cs.num_candidate_edges
                    bucket["reservations"] += len(gcs.reservations)
                    bucket["wall_seconds"] += best
                    bucket["builds"] += 1
                assert all(
                    gcses["set"].cs.candidates == gcses[b].cs.candidates
                    and gcses["set"].cs.num_candidate_edges
                    == gcses[b].cs.num_candidate_edges
                    and gcses["set"].reservations == gcses[b].reservations
                    for b in ("bitmap", "words")
                ), "build backends must produce identical GCSes"
                per_query_speedups.append(walls["set"] / walls["bitmap"])
                set_speedups.append(per_query_speedups[-1])
                words_speedups.append(walls["set"] / walls["words"])
                set_words_speedups.append(words_speedups[-1])
                words_vs_int.append(walls["bitmap"] / walls["words"])
            entry = {}
            for backend in BACKENDS:
                bucket = set_totals[backend]
                wall = bucket["wall_seconds"]
                entry[backend] = {
                    "candidates": bucket["candidates"],
                    "candidate_edges": bucket["candidate_edges"],
                    "reservations": bucket["reservations"],
                    "wall_seconds": round(wall, 6),
                    "builds_per_sec": round(bucket["builds"] / wall, 1),
                }
                for key in ("candidates", "candidate_edges", "reservations",
                            "wall_seconds", "builds"):
                    totals[backend][key] += bucket[key]
            entry["wall_speedup"] = round(
                entry["set"]["wall_seconds"] / entry["bitmap"]["wall_seconds"], 3
            )
            entry["geomean_speedup"] = round(_geomean(set_speedups), 3)
            entry["words_wall_speedup"] = round(
                entry["set"]["wall_seconds"] / entry["words"]["wall_seconds"], 3
            )
            entry["words_geomean_speedup"] = round(
                _geomean(set_words_speedups), 3
            )
            per_set[set_name] = entry
    finally:
        if gc_was_enabled:
            gc.enable()

    overall = {}
    for backend in BACKENDS:
        bucket = totals[backend]
        wall = bucket["wall_seconds"]
        overall[backend] = {
            "candidates": bucket["candidates"],
            "candidate_edges": bucket["candidate_edges"],
            "reservations": bucket["reservations"],
            "wall_seconds": round(wall, 6),
            "builds_per_sec": round(bucket["builds"] / wall, 1),
        }
    overall["wall_speedup"] = round(
        totals["set"]["wall_seconds"] / totals["bitmap"]["wall_seconds"], 3
    )
    overall["geomean_speedup_per_query"] = round(
        _geomean(per_query_speedups), 3
    )
    overall["words_wall_speedup"] = round(
        totals["set"]["wall_seconds"] / totals["words"]["wall_seconds"], 3
    )
    overall["words_geomean_speedup_per_query"] = round(
        _geomean(words_speedups), 3
    )
    overall["words_vs_int_geomean"] = round(_geomean(words_vs_int), 3)
    assert all(
        totals["set"]["candidates"] == totals[b]["candidates"]
        and totals["set"]["candidate_edges"] == totals[b]["candidate_edges"]
        and totals["set"]["reservations"] == totals[b]["reservations"]
        for b in ("bitmap", "words")
    ), "build backends must produce identical GCS totals"
    return {"sets": per_set, "overall": overall}


def run(repeats: int = 5):
    """The full trajectory plus the smoke baseline, as one report."""
    return {
        "dataset": DATASET,
        "harness": "build phase only (GuPEngine.build), warm artifact + "
        "invariant caches, best-of-%d per query" % repeats,
        "metric_notes": (
            "geomean_speedup_per_query weights every grid point equally "
            "(the headline, target >= 2x); wall_speedup aggregates the "
            "whole grid's build seconds"
        ),
        "full": run_grid(FULL_SETS, repeats=repeats),
        "smoke": run_grid(SMOKE_SETS, repeats=repeats, smoke=True),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = run(repeats=args.repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    overall = report["full"]["overall"]
    print(f"fig6/fig7 grid on {DATASET} (GCS build phase):")
    for backend in BACKENDS:
        o = overall[backend]
        print(
            f"  {backend:6s}: {o['wall_seconds']:.3f} s, "
            f"{o['builds_per_sec']} builds/s, "
            f"{o['candidate_edges']} candidate edges"
        )
    print(
        f"  wall speedup {overall['wall_speedup']}x | "
        f"per-query geomean {overall['geomean_speedup_per_query']}x"
    )
    print(
        f"  words vs seed: wall {overall['words_wall_speedup']}x | "
        f"geomean {overall['words_geomean_speedup_per_query']}x | "
        f"vs int {overall['words_vs_int_geomean']}x"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
