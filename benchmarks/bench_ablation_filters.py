"""Substrate ablation: candidate-filter strength vs cost.

GuP builds its GCS with extended DAG-graph DP (§3.1) but the paper
stresses that guard pruning composes with *any* filter.  This bench
quantifies the filter ladder on the hard workload:

* candidate-set size after LDF ⊇ NLF ⊇ DAG-DP (soundness guarantees
  the containment; the bench shows the magnitudes);
* GQL's pseudo-matching is the strongest but costs the most to build;
* GuP's search-space size (recursions) under each filter.
"""

from __future__ import annotations

import time

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.bench.report import format_table
from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine
from repro.filtering.candidate_space import build_candidate_space

DATASET = "wordnet"
SETS = ("16S", "16D")
FILTERS = ("ldf", "nlf", "nlf2", "dagdp", "gql")


def run_filter_ablation():
    data = dataset(DATASET)
    queries = [
        q for set_name in SETS for q in mixed_query_set(DATASET, set_name)
    ]

    sizes = {f: 0 for f in FILTERS}
    build_time = {f: 0.0 for f in FILTERS}
    recursions = {f: 0 for f in FILTERS}
    limits = VIRTUAL_SCALE.limits()

    for query in queries:
        for filt in FILTERS:
            started = time.perf_counter()
            cs = build_candidate_space(query, data, method=filt)
            build_time[filt] += time.perf_counter() - started
            sizes[filt] += cs.total_candidates()

            engine = GuPEngine(data, GuPConfig(filter_method=filt))
            result = engine.match(query, limits=limits)
            recursions[filt] += result.stats.recursions
    return sizes, build_time, recursions, len(queries)


def test_ablation_filters(benchmark):
    sizes, build_time, recursions, n = benchmark.pedantic(
        run_filter_ablation, rounds=1, iterations=1
    )

    rows = [
        [
            filt,
            sizes[filt],
            f"{build_time[filt] * 1000 / n:.1f}ms",
            recursions[filt],
        ]
        for filt in FILTERS
    ]
    publish(
        "ablation_filters",
        format_table(
            ["Filter", "Total candidates", "Avg build", "GuP recursions"],
            rows,
            title=(
                f"Substrate ablation: candidate filters on {DATASET} "
                f"({'+'.join(SETS)}, {n} queries)"
            ),
        ),
    )

    # Refinement ladder: each stage only removes candidates.
    assert sizes["nlf"] <= sizes["ldf"]
    assert sizes["nlf2"] <= sizes["nlf"]
    assert sizes["dagdp"] <= sizes["nlf"]
    assert sizes["gql"] <= sizes["nlf"]
    # Stronger filtering never increases GuP's search space.
    assert recursions["dagdp"] <= recursions["ldf"]