"""Fig. 10: parallel performance — GuP (work stealing) vs DAF (root split).

Paper shape: DAF wins at 1-2 threads (no guard overhead, superlinear
luck) but stops scaling beyond 2 because it only splits the search at
the candidates of u0; GuP's work stealing scales almost linearly with
the thread count.  §4.3.4's companion claim: thread-local nogood stores
barely change the total number of recursions.

See DESIGN.md §2: the scheduling is simulated (GIL), the per-task work
is real (every root task is executed with its own nogood store).
"""

from __future__ import annotations

from benchmarks.conftest import dataset, hard_query_set, publish
from repro.bench.report import format_table
from repro.core.parallel import (
    sequential_gup_work,
    simulate_daf_parallel,
    simulate_gup_parallel,
)
from repro.matching.limits import SearchLimits

THREADS = (1, 2, 4, 9, 18, 36, 72)
DATASET = "wordnet"
LIMITS = SearchLimits(max_embeddings=1_000, collect=False)


def pick_instance():
    """The hardest mined 16D query: deadend-rich with real root fanout."""
    queries = hard_query_set(DATASET, "16D")
    return queries[0]


def run_parallel():
    query = pick_instance()
    data = dataset(DATASET)
    gup = simulate_gup_parallel(query, data, THREADS, limits=LIMITS)
    daf = simulate_daf_parallel(query, data, THREADS, limits=LIMITS)
    seq = sequential_gup_work(query, data, limits=LIMITS)
    return gup, daf, seq


def test_fig10_parallel(benchmark):
    gup, daf, seq = benchmark.pedantic(run_parallel, rounds=1, iterations=1)

    rows = []
    for g, d in zip(gup, daf):
        rows.append(
            [
                g.num_threads,
                f"{g.speedup_vs:.2f}x",
                f"{d.speedup_vs:.2f}x",
                g.makespan,
                d.makespan,
            ]
        )
    text = format_table(
        ["Threads", "GuP speedup", "DAF speedup", "GuP makespan", "DAF makespan"],
        rows,
        title=f"Fig. 10: simulated parallel speedup on {DATASET} (work units = recursions)",
    )
    text += (
        f"\n\nSec. 4.3.4 check -- total recursions: sequential (shared "
        f"nogoods) = {seq}, parallel (thread-local nogoods) = "
        f"{gup[0].total_work} ({gup[0].total_work / max(1, seq):.2f}x)"
    )
    publish("fig10_parallel", text)

    # Paper shape: GuP keeps scaling; DAF plateaus early.
    gup_hi = gup[-1].speedup_vs
    daf_hi = daf[-1].speedup_vs
    assert gup_hi > daf_hi
    gup_speedups = [g.speedup_vs for g in gup]
    assert gup_speedups == sorted(gup_speedups)
    # DAF's speedup is capped by its biggest root task.
    costs = daf[0].task_costs
    if costs and max(costs) > 0:
        cap = sum(costs) / max(costs)
        assert daf_hi <= cap + 1e-9
