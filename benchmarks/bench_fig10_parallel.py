"""Fig. 10: parallel performance — GuP (work stealing) vs DAF (root split).

Paper shape: DAF wins at 1-2 threads (no guard overhead, superlinear
luck) but stops scaling beyond 2 because it only splits the search at
the candidates of u0; GuP's work stealing scales almost linearly with
the thread count.  §4.3.4's companion claim: thread-local nogood stores
barely change the total number of recursions.

See DESIGN.md §2: the scheduling is simulated (GIL), the per-task work
is real (every root task is executed with its own nogood store).

Real mode
---------
``python benchmarks/bench_fig10_parallel.py --real [--workers 1 2 4]``
additionally runs the *actual* process-parallel executor
(:mod:`repro.core.procpool`, DESIGN.md §6) on the same hard instance and
reports wall-clock speedup next to the simulated work-unit speedup,
after asserting the parallel embeddings are identical to the sequential
run.  Wall-clock scaling is bounded by the physical cores of the host
(``os.cpu_count()`` is printed alongside).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script entry: make repo root + src importable
    _ROOT = Path(__file__).resolve().parent.parent
    for _entry in (str(_ROOT / "src"), str(_ROOT)):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

from benchmarks.conftest import dataset, hard_query_set, publish
from repro.bench.report import format_table
from repro.core.engine import GuPEngine
from repro.core.parallel import (
    sequential_gup_work,
    simulate_daf_parallel,
    simulate_gup_parallel,
)
from repro.matching.limits import SearchLimits

THREADS = (1, 2, 4, 9, 18, 36, 72)
DATASET = "wordnet"
LIMITS = SearchLimits(max_embeddings=1_000, collect=False)


def pick_instance():
    """The hardest mined 16D query: deadend-rich with real root fanout."""
    queries = hard_query_set(DATASET, "16D")
    return queries[0]


def run_parallel():
    query = pick_instance()
    data = dataset(DATASET)
    gup = simulate_gup_parallel(query, data, THREADS, limits=LIMITS)
    daf = simulate_daf_parallel(query, data, THREADS, limits=LIMITS)
    seq = sequential_gup_work(query, data, limits=LIMITS)
    return gup, daf, seq


def simulated_report(gup, daf, seq) -> str:
    """The Fig. 10 table + §4.3.4 footer (shared by pytest and --real)."""
    rows = []
    for g, d in zip(gup, daf):
        rows.append(
            [
                g.num_threads,
                f"{g.speedup_vs:.2f}x",
                f"{d.speedup_vs:.2f}x",
                g.makespan,
                d.makespan,
            ]
        )
    text = format_table(
        ["Threads", "GuP speedup", "DAF speedup", "GuP makespan", "DAF makespan"],
        rows,
        title=f"Fig. 10: simulated parallel speedup on {DATASET} (work units = recursions)",
    )
    text += (
        f"\n\nSec. 4.3.4 check -- total recursions: sequential (shared "
        f"nogoods) = {seq}, parallel (thread-local nogoods) = "
        f"{gup[0].total_work} ({gup[0].total_work / max(1, seq):.2f}x)"
    )
    return text


def test_fig10_parallel(benchmark):
    gup, daf, seq = benchmark.pedantic(run_parallel, rounds=1, iterations=1)

    publish("fig10_parallel", simulated_report(gup, daf, seq))

    # Paper shape: GuP keeps scaling; DAF plateaus early.
    gup_hi = gup[-1].speedup_vs
    daf_hi = daf[-1].speedup_vs
    assert gup_hi > daf_hi
    gup_speedups = [g.speedup_vs for g in gup]
    assert gup_speedups == sorted(gup_speedups)
    # DAF's speedup is capped by its biggest root task.
    costs = daf[0].task_costs
    if costs and max(costs) > 0:
        cap = sum(costs) / max(costs)
        assert daf_hi <= cap + 1e-9


# ----------------------------------------------------------------------
# Real mode: wall-clock speedup of the process-parallel executor
# ----------------------------------------------------------------------


def run_real(worker_counts, repeats: int = 3) -> str:
    """Measure the procpool executor against the sequential engine.

    Wall times are the best of ``repeats`` runs (pool spawn + pickle-once
    initialization included — this is the end-to-end cost a user pays).
    Embeddings are collected (unlike the simulated mode's counting runs)
    so every parallel run can be asserted bit-identical — same embedding
    *list*, count, and status — against the sequential one.
    """
    real_limits = SearchLimits(max_embeddings=LIMITS.max_embeddings)
    query = pick_instance()
    data = dataset(DATASET)
    engine = GuPEngine(data)
    gcs = engine.build(query)  # shared: isolate the search step's scaling

    def best_wall(workers: int):
        best = None
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = engine.match(
                query, limits=real_limits, gcs=gcs, workers=workers
            )
            wall = time.perf_counter() - started
            best = wall if best is None else min(best, wall)
        return best, result

    seq_wall, seq = best_wall(1)
    rows = []
    for workers in worker_counts:
        if workers == 1:
            wall, par = seq_wall, seq
        else:
            wall, par = best_wall(workers)
        assert par.embeddings == seq.embeddings
        assert par.num_embeddings == seq.num_embeddings
        assert par.status == seq.status
        rows.append(
            [
                workers,
                f"{wall:.3f}s",
                f"{seq_wall / wall:.2f}x" if wall > 0 else "inf",
                par.stats.recursions,
            ]
        )
    text = format_table(
        ["Workers", "Wall", "Speedup vs seq", "Recursions"],
        rows,
        title=(
            f"Fig. 10 (real): process-parallel wall clock on {DATASET} "
            f"(sequential {seq_wall:.3f}s, {os.cpu_count()} cpus, "
            f"best of {repeats})"
        ),
    )
    text += (
        f"\n\nEvery parallel run verified identical to the sequential run: "
        f"{len(seq.embeddings)} collected embeddings (list order included), "
        f"count, and status."
    )
    return text


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--real", action="store_true",
                        help="run the process-parallel executor for wall clock")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts for --real")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--skip-sim", action="store_true",
                        help="skip the simulated sweep (quick --real checks)")
    args = parser.parse_args(argv)

    if not args.skip_sim:
        gup, daf, seq = run_parallel()
        publish("fig10_parallel", simulated_report(gup, daf, seq))

    if args.real:
        real_text = run_real(args.workers, repeats=args.repeats)
        publish("fig10_parallel_real", real_text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
