"""Hot-path perf smoke gate for CI.

Re-runs the *smoke* sub-grid of :mod:`benchmarks.bench_hotpath` (two
small query sets, easy queries only — a few seconds of work) and
compares the bitmap backend's recursions/sec against the committed
baseline in ``BENCH_hotpath.json``.  Fails (exit 1) when throughput
dropped more than the tolerance (default 30%), catching accidental
de-optimization of the search hot path; also fails if the bitmap
backend is no longer faster than the seed list backend at all.

Run: ``python benchmarks/check_perf.py [--baseline PATH] [--tolerance F]``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_hotpath import SMOKE_SETS, run_grid  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=Path, default=ROOT / "BENCH_hotpath.json"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="maximum allowed fractional drop in recursions/sec",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    base_rps = baseline["smoke"]["overall"]["bitmap"]["recursions_per_sec"]

    fresh = run_grid(SMOKE_SETS, repeats=args.repeats, smoke=True)
    now_rps = fresh["overall"]["bitmap"]["recursions_per_sec"]
    speedup = fresh["overall"]["wall_speedup"]

    floor = base_rps * (1.0 - args.tolerance)
    print(
        f"bitmap smoke recursions/sec: {now_rps:,} "
        f"(baseline {base_rps:,}, floor {floor:,.0f})"
    )
    print(f"bitmap vs seed list backend on the smoke grid: {speedup}x")

    ok = True
    if now_rps < floor:
        print(
            f"FAIL: recursions/sec dropped more than "
            f"{args.tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if speedup < 1.0:
        print("FAIL: bitmap backend is slower than the seed list backend")
        ok = False
    if ok:
        print("OK")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
