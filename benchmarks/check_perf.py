"""Perf smoke gates for CI: search hot path, GCS build path, dynamic
maintenance, service degradation, observability overhead.

Five gates, each a few seconds of work:

* **hotpath** — re-runs the *smoke* sub-grid of
  :mod:`benchmarks.bench_hotpath` and compares the bitmap and words
  search backends' recursions/sec against the committed baseline in
  ``BENCH_hotpath.json``; also fails if the bitmap search is no longer
  faster than the seed list backend at all, or if the words mask
  backend's geomean speedup vs the seed drops below the 1.3x
  acceptance floor.
* **buildpath** — re-runs the smoke sub-grid of
  :mod:`benchmarks.bench_buildpath` and compares the bitmap and words
  build columns' builds/sec against ``BENCH_buildpath.json``; also
  fails if the bitmap builder is no longer faster than the seed set
  builder, or if the words column's geomean speedup vs the seed drops
  below the 1.3x acceptance floor.
* **dynamic** — re-runs the small-delta smoke grid of
  :mod:`benchmarks.bench_dynamic` and compares the incremental
  ``DataArtifacts.apply_delta`` geomean speedup over a cold rebuild
  against ``BENCH_dynamic.json``; also fails if the speedup drops
  below the 2x acceptance floor for small deltas.
* **service** — re-runs the two-level smoke of
  :mod:`benchmarks.bench_service_saturation` against a live server and
  checks the degradation contract: zero shedding below capacity,
  nonzero shedding past it, ``offered == served + shed``, and the
  below-capacity p50 latency within a widened (latency-noise) tolerance
  of the ``BENCH_service.json`` baseline.  Also runs the two-tenant
  fairness smoke: the greedy bulk tenant's excess must be shed with
  tenant-labeled rejections, the light tenant must never be shed, and
  its paired contended/solo p50 ratio must stay bounded.
* **obs** — re-runs a small paired-sample smoke of
  :mod:`benchmarks.bench_obs_overhead` (one server, ``Observability``
  toggled per request) and fails if the median paired metrics-on
  overhead exceeds 5% of the metrics-off p50.  Computed fresh each
  run — absolute latencies on a shared box are not stable enough to
  compare against a committed number, but the paired difference is.

A gate fails (exit 1) when throughput dropped more than the tolerance
(default 30%), catching accidental de-optimization.

Run: ``python benchmarks/check_perf.py
[--gate hotpath|buildpath|dynamic|service|obs|all] [--baseline PATH]
[--build-baseline PATH] [--dynamic-baseline PATH]
[--service-baseline PATH] [--tolerance F]``
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_buildpath import (  # noqa: E402
    SMOKE_SETS as BUILD_SMOKE_SETS,
    run_grid as run_build_grid,
)
from benchmarks.bench_dynamic import (  # noqa: E402
    SMOKE_DELTA_SIZES,
    run_maintenance_grid,
)
from benchmarks.bench_hotpath import (  # noqa: E402
    SMOKE_SETS as HOT_SMOKE_SETS,
    run_grid as run_hot_grid,
)
from benchmarks.bench_obs_overhead import (  # noqa: E402
    run_analyze_overhead,
    run_overhead,
)
from benchmarks.bench_service_saturation import (  # noqa: E402
    BULK_TENANT,
    LIGHT_TENANT,
    SMOKE_LEVELS,
    run_fairness,
    run_saturation,
)

DYNAMIC_SPEEDUP_FLOOR = 2.0  # the ISSUE's small-delta acceptance floor
OBS_OVERHEAD_CEILING = 1.05
"""Observability must stay on-by-default cheap: the median paired
metrics-on overhead may cost at most 5% of the metrics-off hot-path
p50 latency."""
ANALYZE_OVERHEAD_CEILING = 1.15
"""EXPLAIN ANALYZE runs the identical search plus attribution
(stage counts, report, sidecar write); that bookkeeping may cost at
most 15% of the plain cache-bypass p50 latency."""
WORDS_SPEEDUP_FLOOR = 1.3
"""Acceptance floor for the words mask backend: its geomean speedup vs
the seed backend (list search / set builder) on the fig6/fig7 smoke grid
must stay >= 1.3x on the hot path AND the build path — the stacked
trajectory must not regress below the PR 7 acceptance bar."""


def check_hotpath(baseline_path: Path, tolerance: float, repeats: int) -> bool:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_rps = baseline["smoke"]["overall"]["bitmap"]["recursions_per_sec"]
    base_words_rps = baseline["smoke"]["overall"]["words"]["recursions_per_sec"]

    fresh = run_hot_grid(HOT_SMOKE_SETS, repeats=repeats, smoke=True)
    now_rps = fresh["overall"]["bitmap"]["recursions_per_sec"]
    speedup = fresh["overall"]["wall_speedup"]
    now_words_rps = fresh["overall"]["words"]["recursions_per_sec"]
    words_geomean = fresh["overall"]["words_geomean_speedup_per_query"]

    floor = base_rps * (1.0 - tolerance)
    words_floor = base_words_rps * (1.0 - tolerance)
    print(
        f"[hotpath] bitmap smoke recursions/sec: {now_rps:,} "
        f"(baseline {base_rps:,}, floor {floor:,.0f})"
    )
    print(f"[hotpath] bitmap vs seed list backend on the smoke grid: {speedup}x")
    print(
        f"[hotpath] words smoke recursions/sec: {now_words_rps:,} "
        f"(baseline {base_words_rps:,}, floor {words_floor:,.0f})"
    )
    print(
        f"[hotpath] words vs seed list backend geomean: {words_geomean}x "
        f"(floor {WORDS_SPEEDUP_FLOOR}x)"
    )

    ok = True
    if now_rps < floor:
        print(
            f"FAIL: recursions/sec dropped more than "
            f"{tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if speedup < 1.0:
        print("FAIL: bitmap search backend is slower than the seed list backend")
        ok = False
    if now_words_rps < words_floor:
        print(
            f"FAIL: words-backend recursions/sec dropped more than "
            f"{tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if words_geomean < WORDS_SPEEDUP_FLOOR:
        print(
            f"FAIL: words backend is below the {WORDS_SPEEDUP_FLOOR}x "
            f"geomean acceptance floor vs the seed list backend"
        )
        ok = False
    return ok


def check_buildpath(baseline_path: Path, tolerance: float, repeats: int) -> bool:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_bps = baseline["smoke"]["overall"]["bitmap"]["builds_per_sec"]
    base_words_bps = baseline["smoke"]["overall"]["words"]["builds_per_sec"]

    fresh = run_build_grid(BUILD_SMOKE_SETS, repeats=repeats, smoke=True)
    now_bps = fresh["overall"]["bitmap"]["builds_per_sec"]
    speedup = fresh["overall"]["wall_speedup"]
    now_words_bps = fresh["overall"]["words"]["builds_per_sec"]
    words_geomean = fresh["overall"]["words_geomean_speedup_per_query"]

    floor = base_bps * (1.0 - tolerance)
    words_floor = base_words_bps * (1.0 - tolerance)
    print(
        f"[buildpath] bitmap smoke builds/sec: {now_bps:,} "
        f"(baseline {base_bps:,}, floor {floor:,.1f})"
    )
    print(f"[buildpath] bitmap vs seed set builder on the smoke grid: {speedup}x")
    print(
        f"[buildpath] words smoke builds/sec: {now_words_bps:,} "
        f"(baseline {base_words_bps:,}, floor {words_floor:,.1f})"
    )
    print(
        f"[buildpath] words vs seed set builder geomean: {words_geomean}x "
        f"(floor {WORDS_SPEEDUP_FLOOR}x)"
    )

    ok = True
    if now_bps < floor:
        print(
            f"FAIL: builds/sec dropped more than "
            f"{tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if speedup < 1.0:
        print("FAIL: bitmap build backend is slower than the seed set builder")
        ok = False
    if now_words_bps < words_floor:
        print(
            f"FAIL: words-backend builds/sec dropped more than "
            f"{tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if words_geomean < WORDS_SPEEDUP_FLOOR:
        print(
            f"FAIL: words backend is below the {WORDS_SPEEDUP_FLOOR}x "
            f"geomean acceptance floor vs the seed set builder"
        )
        ok = False
    return ok


def check_dynamic(baseline_path: Path, tolerance: float, repeats: int) -> bool:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base = baseline["smoke"]["overall"]["geomean_speedup_small_deltas"]

    fresh = run_maintenance_grid(SMOKE_DELTA_SIZES, repeats=repeats)
    now = fresh["overall"]["geomean_speedup_small_deltas"]

    floor = base * (1.0 - tolerance)
    print(
        f"[dynamic] small-delta incremental-vs-rebuild geomean: {now}x "
        f"(baseline {base}x, floor {floor:.2f}x)"
    )

    ok = True
    if now < floor:
        print(
            f"FAIL: incremental-maintenance speedup dropped more than "
            f"{tolerance:.0%} vs the committed baseline"
        )
        ok = False
    if now < DYNAMIC_SPEEDUP_FLOOR:
        print(
            f"FAIL: incremental maintenance is below the "
            f"{DYNAMIC_SPEEDUP_FLOOR}x small-delta acceptance floor"
        )
        ok = False
    return ok


def check_service(baseline_path: Path, tolerance: float) -> bool:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_p50 = baseline["saturation"]["levels"][0]["p50_ms"]

    fresh = run_saturation(SMOKE_LEVELS, per_client=8)
    low, high = fresh["levels"][0], fresh["levels"][-1]

    # Socket-level latency on a shared CI box is far noisier than the
    # in-process throughput counters the other gates use, so this
    # ceiling quadruples the tolerance (30% -> allow up to 2.2x).
    ceiling = base_p50 * (1.0 + 4.0 * tolerance)
    print(
        f"[service] below-capacity p50: {low['p50_ms']}ms "
        f"(baseline {base_p50}ms, ceiling {ceiling:.3f}ms)"
    )
    print(
        f"[service] overload shed rate at {high['clients']} clients: "
        f"{high['shed_rate']:.1%} ({high['shed']}/{high['offered']})"
    )

    ok = True
    if low["shed"] != 0:
        print("FAIL: server shed requests below capacity")
        ok = False
    if high["shed"] == 0:
        print("FAIL: server queued unboundedly instead of shedding overload")
        ok = False
    for level in fresh["levels"]:
        if level["served"] + level["shed"] != level["offered"]:
            print(f"FAIL: lost requests at {level['clients']} clients")
            ok = False
    if low["p50_ms"] > ceiling:
        print(
            f"FAIL: below-capacity p50 latency regressed more than "
            f"{2 * tolerance:.0%} vs the committed baseline"
        )
        ok = False
    return check_fairness(tolerance) and ok


def check_fairness(tolerance: float) -> bool:
    """The two-tenant half of the service gate (DESIGN.md §13).

    Paired within one run — the contended/solo p50 ratio of the light
    tenant is stable on a shared box even when absolute latencies are
    not (same reasoning as the obs gate), so no committed baseline is
    consulted.
    """
    fresh = run_fairness(per_client=6)
    light = fresh["contended_light"]
    bulk = fresh["contended_bulk"]
    ratio = fresh["p50_ratio_contended_vs_solo"]
    bulk_stats = fresh["tenant_stats"].get(BULK_TENANT, {})
    labeled_sheds = sum(
        count for key, count in bulk_stats.items()
        if key.startswith("shed_")
    )

    # Weighted DRR + the bulk quota bound how much of the light
    # tenant's latency the bulk storm may consume; the ceiling widens
    # the default 30% tolerance 10x because this is a socket-level
    # latency ratio, not a throughput counter (measured ~2.6x when
    # healthy on an idle box).
    ceiling = 1.0 + 10.0 * tolerance
    print(
        f"[service] fairness: {LIGHT_TENANT} p50 solo "
        f"{fresh['solo']['p50_ms']}ms -> contended {light['p50_ms']}ms "
        f"(ratio {ratio}x, ceiling {ceiling:.1f}x)"
    )
    print(
        f"[service] fairness: {BULK_TENANT} shed "
        f"{bulk['shed']}/{bulk['offered']} "
        f"({labeled_sheds} tenant-labeled), {LIGHT_TENANT} shed "
        f"{light['shed']}"
    )

    ok = True
    if light["shed"] != 0:
        print(
            f"FAIL: the {LIGHT_TENANT} tenant was shed under the "
            f"{BULK_TENANT} tenant's storm (admission is not isolating)"
        )
        ok = False
    if bulk["shed"] == 0:
        print(
            f"FAIL: the {BULK_TENANT} tenant's excess was queued instead "
            "of shed at its quota"
        )
        ok = False
    if bulk["shed"] != labeled_sheds:
        print(
            f"FAIL: {bulk['shed']} bulk sheds but {labeled_sheds} "
            "tenant-labeled shed_* counts — rejections lost their tenant"
        )
        ok = False
    if ratio is not None and ratio > ceiling:
        print(
            f"FAIL: the {LIGHT_TENANT} tenant's contended p50 is "
            f"{ratio}x its solo baseline (ceiling {ceiling:.1f}x) — "
            "weighted fair admission is not protecting it"
        )
        ok = False
    return ok


def check_obs() -> bool:
    # Best-of-3: the paired median cancels per-pair noise, but whole-run
    # drift (CPU frequency ramps, a background compile) only ever
    # *inflates* an overhead estimate — the minimum across repetitions
    # is the tightest honest reading, same convention as the best-of-N
    # per-query timing the other benches use on this shared box.
    fresh = min(
        (run_overhead(batches=4, batch_size=25) for _ in range(3)),
        key=lambda r: r["overhead_ratio"],
    )
    ratio = fresh["overhead_ratio"]
    print(
        f"[obs] metrics-on hot-path overhead: "
        f"{fresh['paired_overhead_ms']:+.4f}ms paired median "
        f"({(ratio - 1.0) * 100:+.2f}% of p50 {fresh['p50_off_ms']}ms, "
        f"ceiling {OBS_OVERHEAD_CEILING}x, best of 3 runs)"
    )
    ok = True
    if ratio > OBS_OVERHEAD_CEILING:
        print(
            f"FAIL: observability costs more than "
            f"{(OBS_OVERHEAD_CEILING - 1.0):.0%} of hot-path p50 latency"
        )
        ok = False
    analyze = min(
        (run_analyze_overhead(batches=2, batch_size=10) for _ in range(3)),
        key=lambda r: r["overhead_ratio"],
    )
    analyze_ratio = analyze["overhead_ratio"]
    print(
        f"[obs] explain-analyze overhead: "
        f"{analyze['paired_overhead_ms']:+.4f}ms paired median "
        f"({(analyze_ratio - 1.0) * 100:+.2f}% of p50 "
        f"{analyze['p50_plain_ms']}ms, "
        f"ceiling {ANALYZE_OVERHEAD_CEILING}x, best of 3 runs)"
    )
    if analyze_ratio > ANALYZE_OVERHEAD_CEILING:
        print(
            f"FAIL: explain=analyze costs more than "
            f"{(ANALYZE_OVERHEAD_CEILING - 1.0):.0%} of the plain "
            f"cache-bypass p50 latency"
        )
        ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--gate",
        choices=("hotpath", "buildpath", "dynamic", "service", "obs", "all"),
        default="all",
    )
    parser.add_argument(
        "--baseline", type=Path, default=ROOT / "BENCH_hotpath.json"
    )
    parser.add_argument(
        "--build-baseline", type=Path, default=ROOT / "BENCH_buildpath.json"
    )
    parser.add_argument(
        "--dynamic-baseline", type=Path, default=ROOT / "BENCH_dynamic.json"
    )
    parser.add_argument(
        "--service-baseline", type=Path, default=ROOT / "BENCH_service.json"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="maximum allowed fractional drop in throughput",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    ok = True
    if args.gate in ("hotpath", "all"):
        ok = check_hotpath(args.baseline, args.tolerance, args.repeats) and ok
    if args.gate in ("buildpath", "all"):
        ok = (
            check_buildpath(args.build_baseline, args.tolerance, args.repeats)
            and ok
        )
    if args.gate in ("dynamic", "all"):
        ok = (
            check_dynamic(args.dynamic_baseline, args.tolerance, args.repeats)
            and ok
        )
    if args.gate in ("service", "all"):
        ok = check_service(args.service_baseline, args.tolerance) and ok
    if args.gate in ("obs", "all"):
        ok = check_obs() and ok
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
