"""Fig. 8: parameter search for the reservation size limit ``r``.

Paper shape: with only reservation guards enabled, pruning power grows
with ``r`` but saturates around ``r = 3`` — the recommended default.
The bars are total recursions over a fixed workload for
``r in {0, 1, 3, 5, 7, inf}``.
"""

from __future__ import annotations

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.baselines.registry import GuPMatcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.core.config import GuPConfig

R_VALUES = (0, 1, 3, 5, 7, None)
DATASET = "wordnet"
SETS = ("16S", "24S", "16D")


def run_sweep():
    totals = {}
    for r in R_VALUES:
        matcher = GuPMatcher(GuPConfig.reservation_only(r), name=f"r={r}")
        total = 0
        for set_name in SETS:
            res = run_query_set(
                matcher,
                dataset(DATASET),
                mixed_query_set(DATASET, set_name),
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            total += res.total_recursions()
        totals[r] = total
    return totals


def label(r):
    return "r=inf" if r is None else f"r={r}"


def test_fig8_reservation_size(benchmark):
    totals = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "fig8_reservation_size",
        format_table(
            ["r", "total recursions"],
            [[label(r), totals[r]] for r in R_VALUES],
            title=(
                "Fig. 8: recursions vs reservation size limit "
                f"(R-only config, {DATASET} {'+'.join(SETS)})"
            ),
        ),
    )

    # Paper shape: larger r never hurts pruning, and r=3 captures almost
    # all of it (saturation: r=inf is within a few percent of r=3).
    assert totals[3] <= totals[0]
    assert totals[None] <= totals[1]
    assert totals[None] >= totals[3] * 0.90
