"""Fig. 4: number of queries in each processing-cost range, aggregated.

Paper shape: over the sets every method finished, GuP has the fewest
queries above every threshold and *zero* above the kill limit.  Our
thresholds are the virtual-time analogues (100 / 1k / 10k recursions for
the paper's 1 s / 1 min / 1 hr).
"""

from __future__ import annotations

from benchmarks.conftest import (
    SET_SPECS,
    VIRTUAL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.bench.stats import threshold_counts

# Aggregate over datasets where every method finishes everything (the
# paper analogously restricts Fig. 4 to sets with no DNFs).
AGG_DATASETS = ("yeast", "human", "patents")
AGG_SETS = ("8S", "16S", "8D", "16D")


def run_distribution():
    per_method = {m: [] for m in PAPER_METHODS}
    for ds in AGG_DATASETS:
        for set_name in AGG_SETS:
            queries = mixed_query_set(ds, set_name)
            for method in PAPER_METHODS:
                res = run_query_set(
                    get_matcher(method),
                    dataset(ds),
                    queries,
                    scale=VIRTUAL_SCALE,
                    set_name=set_name,
                    stop_on_dnf=False,
                )
                per_method[method].extend(res.records)
    return per_method


def test_fig4_time_distribution(benchmark):
    per_method = benchmark.pedantic(run_distribution, rounds=1, iterations=1)

    thresholds = VIRTUAL_SCALE.cost_thresholds
    kill = VIRTUAL_SCALE.kill_cost
    rows = []
    counts = {}
    for method in PAPER_METHODS:
        records = per_method[method]
        c = threshold_counts(records, thresholds, kill, cost_of=VIRTUAL_SCALE.cost)
        counts[method] = c
        rows.append(
            [method, len(records)] + [c[t] for t in thresholds]
        )
    header = ["Method", "All"] + [f">={int(t)}rec" for t in thresholds]
    publish(
        "fig4_time_distribution",
        format_table(
            header,
            rows,
            title=(
                "Fig. 4 (virtual time): queries per processing-cost range\n"
                "aggregated over sets finished by every method"
            ),
        ),
    )

    top = thresholds[-1]
    # Paper shape: GuP has the fewest queries in the highest range.
    assert counts["GuP"][top] == min(c[top] for c in counts.values())
