"""Fig. 6: average processing cost per query set.

Paper shape (Yeast): GuP is only *moderate* on 8/16-vertex queries —
guard generation and matching have overheads — but becomes one of the
best methods on 24/32-vertex queries, whose larger search spaces let
pruning pay off.  Timed-out queries count at the kill limit.

We emit both panels: wall-clock averages (where GuP's Python-side guard
overhead on easy queries is visible, mirroring the paper's small-query
regime) and virtual-time averages (where the search-space advantage on
hard sets shows, mirroring the large-query regime).
"""

from __future__ import annotations

from benchmarks.conftest import (
    VIRTUAL_SCALE,
    WALL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.bench.stats import average_cost_with_timeouts

SETS = ("8S", "16S", "24S", "8D", "16D", "24D")
DATASET = "wordnet"  # our hard dataset, analogous to the paper's focus


def run_averages():
    virtual = {}
    wall = {}
    for set_name in SETS:
        queries = mixed_query_set(DATASET, set_name)
        for method in PAPER_METHODS:
            res = run_query_set(
                get_matcher(method),
                dataset(DATASET),
                queries,
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            virtual[(method, set_name)] = average_cost_with_timeouts(
                res, VIRTUAL_SCALE.cost, VIRTUAL_SCALE.kill_cost
            )
            wall[(method, set_name)] = average_cost_with_timeouts(
                res, lambda r: r.seconds, WALL_SCALE.query_time_limit
            )
    return virtual, wall


def test_fig6_average_time(benchmark):
    virtual, wall = benchmark.pedantic(run_averages, rounds=1, iterations=1)

    vrows = [
        [m] + [f"{virtual[(m, s)]:.0f}" for s in SETS] for m in PAPER_METHODS
    ]
    wrows = [
        [m] + [f"{wall[(m, s)] * 1000:.1f}" for s in SETS] for m in PAPER_METHODS
    ]
    publish(
        "fig6_avg_time",
        format_table(
            ["Method"] + list(SETS),
            vrows,
            title=f"Fig. 6a (virtual time, avg recursions/query) on {DATASET}",
        )
        + "\n\n"
        + format_table(
            ["Method"] + list(SETS),
            wrows,
            title=f"Fig. 6b (wall clock, avg ms/query) on {DATASET}",
        ),
    )

    # Paper shape: on the largest sparse set, GuP's average search cost
    # is the smallest (or tied) among all methods.
    best_24s = min(virtual[(m, "24S")] for m in PAPER_METHODS)
    assert virtual[("GuP", "24S")] <= best_24s * 1.05
