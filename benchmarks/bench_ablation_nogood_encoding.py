"""Design-choice ablation: search-node encoding vs explicit nogoods.

Contribution (4) of the paper is the search-node encoding (§3.5.1): it
makes every guard-match test O(1) at the cost of generality — an
encoded guard only fires for descendants of the search node it was
recorded at, while a literal assignment-set guard fires on *any*
partial embedding containing the assignments.

This bench quantifies both sides of the trade on the hard workload:

* pruning power — recursions with the explicit store never exceed the
  encoded store's (more general matching);
* match-test cost — wall time per recursion is higher for the explicit
  store (O(|D|) comparisons and guard materialization).

The paper's claim that the encoding "enables pruning without increasing
the time and space complexities" holds when the recursion gap stays
small — which is what we observe.
"""

from __future__ import annotations

import time

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.baselines.registry import GuPMatcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.core.config import GuPConfig

DATASET = "wordnet"
SETS = ("16S", "24S", "16D")

REPRESENTATIONS = (
    ("search_node", GuPConfig()),
    ("explicit", GuPConfig(nogood_representation="explicit")),
)


def run_ablation():
    # Warm the cached workloads so mining cost stays out of the timings.
    for set_name in SETS:
        mixed_query_set(DATASET, set_name)
    out = {}
    for name, config in REPRESENTATIONS:
        matcher = GuPMatcher(config, name=name)
        recursions = 0
        wall = 0.0
        for set_name in SETS:
            started = time.perf_counter()
            res = run_query_set(
                matcher,
                dataset(DATASET),
                mixed_query_set(DATASET, set_name),
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            wall += time.perf_counter() - started
            recursions += res.total_recursions()
        out[name] = (recursions, wall)
    return out


def test_ablation_nogood_encoding(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for name, (recursions, wall) in results.items():
        per_recursion = wall / recursions * 1e6 if recursions else 0.0
        rows.append(
            [name, recursions, f"{wall:.2f}s", f"{per_recursion:.1f}us"]
        )
    publish(
        "ablation_nogood_encoding",
        format_table(
            ["Representation", "Recursions", "Wall", "us/recursion"],
            rows,
            title=(
                "Ablation: nogood representation "
                f"({DATASET} {'+'.join(SETS)})"
            ),
        ),
    )

    encoded_rec, _ = results["search_node"]
    explicit_rec, _ = results["explicit"]
    # Explicit matching is at least as general: never more recursions.
    assert explicit_rec <= encoded_rec
    # And the encoding loses little pruning power (the paper's design
    # bet): within 10% on this workload.
    assert encoded_rec <= explicit_rec * 1.10
