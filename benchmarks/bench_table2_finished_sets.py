"""Table 2: finished (i.e. non-DNF) query sets per method.

Paper shape: GuP finishes the most query sets (20 of 24 there); DAF
finishes the fewest (8), with GQL-G/GQL-R/RM in between.  Reproduction:
the grid below runs every paper method over mixed (easy + mined-hard)
query sets for all four dataset stand-ins under the recursion-budget
harness; the assertion checks GuP finishes at least as many sets as
every baseline.
"""

from __future__ import annotations

from benchmarks.conftest import (
    SET_SPECS,
    VIRTUAL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set

GRID_DATASETS = ("yeast", "human", "wordnet", "patents")


def run_grid():
    results = {}
    for ds in GRID_DATASETS:
        for set_name in SET_SPECS:
            queries = mixed_query_set(ds, set_name)
            for method in PAPER_METHODS:
                res = run_query_set(
                    get_matcher(method),
                    dataset(ds),
                    queries,
                    scale=VIRTUAL_SCALE,
                    set_name=f"{ds}/{set_name}",
                )
                results[(method, ds, set_name)] = res.finished
    return results


def render(results) -> str:
    columns = [f"{ds[:2]}/{s}" for ds in GRID_DATASETS for s in SET_SPECS]
    rows = []
    for method in PAPER_METHODS:
        marks = [
            "Y" if results[(method, ds, s)] else "-"
            for ds in GRID_DATASETS
            for s in SET_SPECS
        ]
        rows.append([method] + marks + [marks.count("Y")])
    return format_table(
        ["Method"] + columns + ["Count"],
        rows,
        title=(
            "Table 2 (scaled, virtual time): finished query sets per method\n"
            f"DNF = any {VIRTUAL_SCALE.subgroup_size}-query subgroup exceeding "
            f"{VIRTUAL_SCALE.subgroup_recursion_budget} recursions "
            f"(kill: {VIRTUAL_SCALE.query_recursion_limit}/query)"
        ),
    )


def test_table2_finished_sets(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    publish("table2_finished_sets", render(results))

    counts = {
        m: sum(
            1 for ds in GRID_DATASETS for s in SET_SPECS if results[(m, ds, s)]
        )
        for m in PAPER_METHODS
    }
    assert counts["GuP"] == max(counts.values()), counts
