"""Dynamic-graph trajectory: incremental maintenance vs full rebuild.

Two sections, both on the fig6/fig7 dataset (wordnet) and both
*differentially verified in-run*:

* **maintenance** — for each delta size on a grid (1..64 edge edits,
  half insertions / half deletions, plus a sprinkle of new vertices),
  time ``DataArtifacts.apply_delta`` (the incremental patch) against a
  cold ``DataArtifacts(new_graph)`` rebuild, asserting the two
  serialize byte-identically.  The headline is the per-delta geometric
  mean speedup; the acceptance floor is >= 2x for small deltas (the
  committed numbers are far above it — a patch touches a handful of
  rows where the rebuild walks all |V|).
* **continuous** — standing queries from the 8S query set registered on
  a :class:`repro.dynamic.continuous.ContinuousMatcher`; per delta,
  time the incremental diff (``matcher.apply``) against a full
  re-match of every standing query on the updated warm engine,
  asserting ``old - removed + added == full re-match`` each step.

Emits ``BENCH_dynamic.json`` at the repo root; the ``smoke`` section
(small delta-size sub-grid, fewer repeats) is the regression baseline
for ``check_perf.py --gate dynamic``.

Run: ``python benchmarks/bench_dynamic.py [--repeats N] [--out PATH]``
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import dataset, easy_query_set  # noqa: E402
from repro.core.engine import GuPEngine  # noqa: E402
from repro.dynamic.continuous import ContinuousMatcher  # noqa: E402
from repro.dynamic.delta import GraphDelta, apply_delta  # noqa: E402
from repro.filtering.artifacts import (  # noqa: E402
    DataArtifacts,
    dumps_artifacts,
)
from repro.matching.limits import SearchLimits  # noqa: E402

DATASET = "wordnet"  # the fig6/fig7 dataset
DELTA_SIZES = (1, 4, 16, 64)
SMOKE_DELTA_SIZES = (1, 4)
SMALL_SIZE_CUTOFF = 4  # "small deltas" for the >= 2x acceptance floor
DELTAS_PER_SIZE = 8
DEFAULT_OUT = ROOT / "BENCH_dynamic.json"


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def random_delta(rng: random.Random, graph, size: int) -> GraphDelta:
    """``size`` edge edits (half removals, half insertions) against
    ``graph``; every fourth delta also adds a labeled vertex."""
    n = graph.num_vertices
    add_vertices = ()
    if rng.random() < 0.25:
        add_vertices = (rng.randrange(3),)
    n_new = n + len(add_vertices)
    edges = list(graph.edges())
    remove = tuple(rng.sample(edges, min(size // 2, len(edges))))
    removed = set(remove)
    add = []
    while len(add) < size - len(remove):
        u, v = rng.randrange(n_new), rng.randrange(n_new)
        edge = (min(u, v), max(u, v))
        if (
            u != v
            and edge not in removed
            and edge not in add
            and not (edge[1] < n and graph.has_edge(*edge))
        ):
            add.append(edge)
    return GraphDelta(
        add_vertices=add_vertices,
        add_edges=tuple(add),
        remove_edges=remove,
    )


def run_maintenance_grid(sizes, repeats: int = 3, seed: int = 2023):
    """Patch-vs-rebuild timings per delta size (byte-identity asserted)."""
    graph = dataset(DATASET)
    artifacts = DataArtifacts(graph)
    # Warm the mask ladders the way a serving engine would have them.
    for query in easy_query_set(DATASET, "8S"):
        artifacts.nlf_candidate_masks(query)

    per_size = {}
    all_speedups = []
    small_speedups = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for size in sizes:
            rng = random.Random(seed + size)
            speedups = []
            patch_wall = rebuild_wall = 0.0
            for _ in range(DELTAS_PER_SIZE):
                delta = random_delta(rng, graph, size)
                new_graph, summary = apply_delta(graph, delta)

                best_patch = best_rebuild = None
                patched = cold = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    patched = artifacts.apply_delta(new_graph, summary)
                    elapsed = time.perf_counter() - started
                    best_patch = (
                        elapsed if best_patch is None
                        else min(best_patch, elapsed)
                    )
                    started = time.perf_counter()
                    cold = DataArtifacts(new_graph)
                    elapsed = time.perf_counter() - started
                    best_rebuild = (
                        elapsed if best_rebuild is None
                        else min(best_rebuild, elapsed)
                    )
                assert dumps_artifacts(patched) == dumps_artifacts(cold), (
                    "incremental patch must be byte-identical to a cold "
                    "rebuild"
                )
                speedups.append(best_rebuild / best_patch)
                patch_wall += best_patch
                rebuild_wall += best_rebuild
            all_speedups.extend(speedups)
            if size <= SMALL_SIZE_CUTOFF:
                small_speedups.extend(speedups)
            per_size[str(size)] = {
                "deltas": DELTAS_PER_SIZE,
                "patch_seconds": round(patch_wall, 6),
                "rebuild_seconds": round(rebuild_wall, 6),
                "geomean_speedup": round(_geomean(speedups), 3),
                "wall_speedup": round(rebuild_wall / patch_wall, 3),
            }
    finally:
        if gc_was_enabled:
            gc.enable()

    overall = {
        "geomean_speedup": round(_geomean(all_speedups), 3),
        "geomean_speedup_small_deltas": round(
            _geomean(small_speedups), 3
        ) if small_speedups else None,
    }
    return {"sizes": per_size, "overall": overall}


def run_continuous(
    num_queries: int = 3,
    num_deltas: int = 6,
    delta_size: int = 4,
    seed: int = 2023,
):
    """Incremental diff maintenance vs full re-match per delta."""
    graph = dataset(DATASET)
    queries = easy_query_set(DATASET, "8S")[:num_queries]
    matcher = ContinuousMatcher(graph)
    for i, query in enumerate(queries):
        matcher.register(f"q{i}", query)
    rng = random.Random(seed)

    incr_wall = full_wall = 0.0
    diffs_total = 0
    for _ in range(num_deltas):
        delta = random_delta(rng, matcher.graph, delta_size)
        started = time.perf_counter()
        diffs = matcher.apply(delta)
        incr_wall += time.perf_counter() - started
        diffs_total += sum(
            len(d.added) + len(d.removed) for d in diffs.values()
        )
        # Full re-match on the *same* warm engine: fair baseline, and
        # the correctness oracle for the maintained sets.
        started = time.perf_counter()
        rematch = [
            matcher.engine.match(query, limits=SearchLimits())
            for query in queries
        ]
        full_wall += time.perf_counter() - started
        for i, result in enumerate(rematch):
            assert set(matcher.matches(f"q{i}")) == {
                tuple(e) for e in result.embeddings
            }, "diff stream must replay to the full re-match result"
    return {
        "standing_queries": len(queries),
        "deltas": num_deltas,
        "delta_size": delta_size,
        "diff_embeddings": diffs_total,
        "incremental_seconds": round(incr_wall, 6),
        "full_rematch_seconds": round(full_wall, 6),
        "wall_speedup": round(full_wall / incr_wall, 3),
        "counters": dict(matcher.counters),
    }


def run(repeats: int = 3):
    return {
        "dataset": DATASET,
        "harness": (
            "maintenance: DataArtifacts.apply_delta vs cold rebuild, "
            "best-of-%d per delta, %d deltas per size, byte-identity "
            "asserted; continuous: ContinuousMatcher.apply vs full "
            "re-match on the same warm engine, equality asserted"
            % (repeats, DELTAS_PER_SIZE)
        ),
        "metric_notes": (
            "geomean_speedup_small_deltas (sizes <= %d) is the headline "
            "with the >= 2x acceptance floor; continuous wall_speedup "
            "depends on the standing queries' result-set sizes"
            % SMALL_SIZE_CUTOFF
        ),
        "maintenance": run_maintenance_grid(DELTA_SIZES, repeats=repeats),
        "continuous": run_continuous(),
        "smoke": run_maintenance_grid(
            SMOKE_DELTA_SIZES, repeats=max(2, repeats - 1)
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = run(repeats=args.repeats)
    args.out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    maintenance = report["maintenance"]
    for size, entry in sorted(
        maintenance["sizes"].items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"[maintenance] {size:>3} edits: patch {entry['patch_seconds']}s "
            f"vs rebuild {entry['rebuild_seconds']}s "
            f"-> {entry['geomean_speedup']}x"
        )
    print(
        f"[maintenance] overall geomean "
        f"{maintenance['overall']['geomean_speedup']}x "
        f"(small deltas "
        f"{maintenance['overall']['geomean_speedup_small_deltas']}x)"
    )
    cont = report["continuous"]
    print(
        f"[continuous] {cont['standing_queries']} standing queries x "
        f"{cont['deltas']} deltas: incremental {cont['incremental_seconds']}s "
        f"vs full re-match {cont['full_rematch_seconds']}s "
        f"-> {cont['wall_speedup']}x"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
