"""Hot-path perf trajectory: bitmap backend vs the seed list-based search.

Runs full GuP (all guards + backjumping) with three backend columns —
``"bitmap"`` (:mod:`repro.core.backtrack`, the dense-index default),
``"list"`` (:mod:`repro.core.backtrack_ref`, the seed implementation kept
verbatim), and ``"words"`` (the bitmap search with
``mask_backend="words"`` — word-array mask kernels, DESIGN.md §11) —
over the fig6/fig7 workload grid (the six query sets of
:data:`benchmarks.conftest.SET_SPECS` on wordnet, easy random-walk bulk
plus the mined hard tail, under the recursion-budget harness).  All
backends explore byte-identical search trees (``tests/test_bitmap_cs.py``
and ``tests/test_config_matrix.py`` prove it), so recursions and
refinements match exactly and the only difference is wall time per
recursion.

Emits ``BENCH_hotpath.json`` at the repo root with, per query set and
overall:

* recursions/sec and refinements/sec for every backend (search phase
  only, best-of-N per query);
* the wall-aggregate speedup (hard, recursion-capped queries dominate
  this) and the per-query geometric-mean speedup (each workload point
  weighted equally — the headline number), plus the same pair for the
  words column (vs the seed, the stacked-trajectory reading) and the
  words-vs-int geomean;
* a ``smoke`` section from a tiny sub-grid that ``check_perf.py`` uses
  as its regression baseline.

Run: ``python benchmarks/bench_hotpath.py [--repeats N] [--out PATH]``
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import (  # noqa: E402
    SET_SPECS,
    VIRTUAL_SCALE,
    dataset,
    easy_query_set,
    hard_query_set,
)
from repro.core.config import GuPConfig  # noqa: E402
from repro.core.engine import GuPEngine  # noqa: E402

DATASET = "wordnet"  # the fig6/fig7 dataset
BACKENDS = ("list", "bitmap", "words")
FULL_SETS = tuple(SET_SPECS)
SMOKE_SETS = ("8S", "8D")
DEFAULT_OUT = ROOT / "BENCH_hotpath.json"

# Per-column engine configs.  ``mask_backend`` is pinned explicitly so a
# REPRO_MASK_BACKEND override (the CI words matrix job) cannot skew the
# reference columns.  ``"words"`` is the full stacked configuration —
# bitmap candidate backend + word-array mask kernels — so its speedup
# column reads directly against the seed, like every prior trajectory
# column.
CONFIGS = {
    "list": GuPConfig(candidate_backend="list", mask_backend="int"),
    "bitmap": GuPConfig(candidate_backend="bitmap", mask_backend="int"),
    "words": GuPConfig(candidate_backend="bitmap", mask_backend="words"),
}


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_grid(sets, repeats: int = 5, smoke: bool = False):
    """Measure both backends over the given query sets.

    Search-phase wall time only (GCS construction is identical work for
    both backends and excluded, as in the paper's recursion accounting);
    best-of-``repeats`` per query to suppress scheduler noise.
    """
    data = dataset(DATASET)
    engines = {b: GuPEngine(data, CONFIGS[b]) for b in BACKENDS}
    limits = VIRTUAL_SCALE.limits()

    per_set = {}
    totals = {b: {"recursions": 0, "refine_ops": 0, "wall_seconds": 0.0}
              for b in BACKENDS}
    per_query_speedups = []
    words_speedups = []
    words_vs_int = []

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for set_name in sets:
            queries = easy_query_set(DATASET, set_name)
            if not smoke:
                queries = queries + hard_query_set(DATASET, set_name)
            set_totals = {
                b: {"recursions": 0, "refine_ops": 0, "wall_seconds": 0.0}
                for b in BACKENDS
            }
            set_speedups = []
            set_words_speedups = []
            for query in queries:
                walls = {}
                for backend in BACKENDS:
                    engine = engines[backend]
                    gcs = engine.build(query)
                    best = None
                    result = None
                    for _ in range(repeats):
                        result = engine.match(query, limits=limits, gcs=gcs)
                        elapsed = result.elapsed_seconds
                        best = elapsed if best is None else min(best, elapsed)
                    walls[backend] = best
                    bucket = set_totals[backend]
                    bucket["recursions"] += result.stats.recursions
                    bucket["refine_ops"] += result.stats.refine_ops
                    bucket["wall_seconds"] += best
                per_query_speedups.append(walls["list"] / walls["bitmap"])
                set_speedups.append(per_query_speedups[-1])
                words_speedups.append(walls["list"] / walls["words"])
                set_words_speedups.append(words_speedups[-1])
                words_vs_int.append(walls["bitmap"] / walls["words"])
            entry = {}
            for backend in BACKENDS:
                bucket = set_totals[backend]
                wall = bucket["wall_seconds"]
                entry[backend] = {
                    "recursions": bucket["recursions"],
                    "refine_ops": bucket["refine_ops"],
                    "wall_seconds": round(wall, 6),
                    "recursions_per_sec": round(bucket["recursions"] / wall),
                    "refine_ops_per_sec": round(bucket["refine_ops"] / wall),
                }
                for key in ("recursions", "refine_ops", "wall_seconds"):
                    totals[backend][key] += bucket[key]
            entry["wall_speedup"] = round(
                entry["list"]["wall_seconds"] / entry["bitmap"]["wall_seconds"], 3
            )
            entry["geomean_speedup"] = round(_geomean(set_speedups), 3)
            entry["words_wall_speedup"] = round(
                entry["list"]["wall_seconds"] / entry["words"]["wall_seconds"], 3
            )
            entry["words_geomean_speedup"] = round(
                _geomean(set_words_speedups), 3
            )
            per_set[set_name] = entry
    finally:
        if gc_was_enabled:
            gc.enable()

    overall = {}
    for backend in BACKENDS:
        bucket = totals[backend]
        wall = bucket["wall_seconds"]
        overall[backend] = {
            "recursions": bucket["recursions"],
            "refine_ops": bucket["refine_ops"],
            "wall_seconds": round(wall, 6),
            "recursions_per_sec": round(bucket["recursions"] / wall),
            "refine_ops_per_sec": round(bucket["refine_ops"] / wall),
        }
    overall["wall_speedup"] = round(
        totals["list"]["wall_seconds"] / totals["bitmap"]["wall_seconds"], 3
    )
    overall["geomean_speedup_per_query"] = round(
        _geomean(per_query_speedups), 3
    )
    overall["words_wall_speedup"] = round(
        totals["list"]["wall_seconds"] / totals["words"]["wall_seconds"], 3
    )
    overall["words_geomean_speedup_per_query"] = round(
        _geomean(words_speedups), 3
    )
    overall["words_vs_int_geomean"] = round(_geomean(words_vs_int), 3)
    assert (
        totals["list"]["recursions"]
        == totals["bitmap"]["recursions"]
        == totals["words"]["recursions"]
    ), "backends must explore identical search trees"
    return {"sets": per_set, "overall": overall}


def run(repeats: int = 5):
    """The full trajectory plus the smoke baseline, as one report."""
    report = {
        "dataset": DATASET,
        "harness": "virtual (recursion budget), full GuP config, "
        "search phase only, best-of-%d per query" % repeats,
        "metric_notes": (
            "geomean_speedup_per_query weights every grid point equally; "
            "wall_speedup is dominated by the recursion-capped hard tail"
        ),
        "full": run_grid(FULL_SETS, repeats=repeats),
        "smoke": run_grid(SMOKE_SETS, repeats=repeats, smoke=True),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = run(repeats=args.repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    overall = report["full"]["overall"]
    print(f"fig6/fig7 grid on {DATASET} (full GuP, search phase):")
    for backend in BACKENDS:
        o = overall[backend]
        print(
            f"  {backend:6s}: {o['recursions']} recursions, "
            f"{o['recursions_per_sec']:,} rec/s, "
            f"{o['refine_ops_per_sec']:,} refinements/s"
        )
    print(
        f"  wall speedup {overall['wall_speedup']}x | "
        f"per-query geomean {overall['geomean_speedup_per_query']}x"
    )
    print(
        f"  words vs seed: wall {overall['words_wall_speedup']}x | "
        f"geomean {overall['words_geomean_speedup_per_query']}x | "
        f"vs int {overall['words_vs_int_geomean']}x"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
