"""Design ablation (extension): symmetry breaking on symmetric queries.

Not in the paper (GuP enumerates all embeddings directly); VEQ [20] —
the method the paper excludes from its tables — exploits query
equivalences.  This bench measures what the extension buys on
automorphism-rich queries: the search enumerates one representative per
class and expands afterwards, so recursions drop roughly by the
expansion factor while the embedding sets stay identical (asserted).
"""

from __future__ import annotations

from benchmarks.conftest import dataset, publish
from repro.bench.report import format_table
from repro.core.config import GuPConfig
from repro.core.engine import match
from repro.core.symmetry import equivalence_classes, expansion_factor
from repro.graph.builder import GraphBuilder
from repro.matching.limits import SearchLimits

DATASET = "wordnet"


def symmetric_queries(data):
    """Star / double-star / triangle-fan queries over common labels."""
    from collections import Counter

    common = [l for l, _ in Counter(data.labels).most_common(3)]
    queries = {}

    b = GraphBuilder()
    center = b.add_vertex(common[0])
    for _ in range(3):
        b.add_edge(center, b.add_vertex(common[1]))
    queries["star-3"] = b.build()

    b = GraphBuilder()
    c1 = b.add_vertex(common[0])
    c2 = b.add_vertex(common[1])
    b.add_edge(c1, c2)
    for _ in range(2):
        b.add_edge(c1, b.add_vertex(common[2]))
    for _ in range(2):
        b.add_edge(c2, b.add_vertex(common[2]))
    queries["double-star"] = b.build()

    b = GraphBuilder()
    hub = b.add_vertex(common[0])
    spokes = [b.add_vertex(common[1]) for _ in range(3)]
    for s in spokes:
        b.add_edge(hub, s)
    b.add_edge(spokes[0], spokes[1])
    queries["fan"] = b.build()
    return queries


def run_symmetry_ablation():
    data = dataset(DATASET)
    limits = SearchLimits(max_embeddings=20_000, collect=True)
    rows = []
    gains = []
    for name, query in symmetric_queries(data).items():
        classes = equivalence_classes(query)
        factor = expansion_factor(classes)
        plain = match(query, data, limits=limits)
        broken = match(
            query, data, config=GuPConfig(break_symmetry=True), limits=limits
        )
        assert broken.embedding_set() == plain.embedding_set(), name
        ratio = (
            plain.stats.recursions / broken.stats.recursions
            if broken.stats.recursions
            else 1.0
        )
        gains.append((name, ratio, factor))
        rows.append(
            [
                name,
                factor,
                plain.stats.recursions,
                broken.stats.recursions,
                f"{ratio:.2f}x",
                plain.num_embeddings,
            ]
        )
    return rows, gains


def test_ablation_symmetry(benchmark):
    rows, gains = benchmark.pedantic(
        run_symmetry_ablation, rounds=1, iterations=1
    )
    publish(
        "ablation_symmetry",
        format_table(
            ["Query", "Expansion", "Recursions (plain)",
             "Recursions (sym)", "Speedup", "Embeddings"],
            rows,
            title=f"Ablation (extension): symmetry breaking on {DATASET}",
        ),
    )
    # On automorphism-rich queries the representative search must be
    # strictly smaller at least once, and never larger.
    assert any(ratio > 1.2 for _n, ratio, _f in gains), gains
    assert all(ratio >= 0.99 for _n, ratio, _f in gains), gains
