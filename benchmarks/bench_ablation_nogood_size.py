"""Design ablation: nogood size — GuP deadend masks vs DAF failing sets.

§3.4 argues GuP's nogood discovery beats failing-set pruning for two
reasons; this bench quantifies the second: *"GuP discovers smaller
nogoods, which offer higher pruning power.  Owing to the ancestors, a
failing set tends to be large and so offers a large nogood."*

We run GuP and DAF over the hard workload and compare the average
number of assignments per discovered nogood (deadend mask for GuP,
failing set for DAF).  The example in §3.4: for the same deadend, DAF's
failing set is {u0, u1} while GuP's mask is {u0}.
"""

from __future__ import annotations

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.baselines.registry import get_matcher
from repro.bench.report import format_table

DATASET = "wordnet"
SETS = ("16S", "24S", "16D")


def run_sizes():
    out = {}
    for method in ("GuP", "DAF"):
        matcher = get_matcher(method)
        size_sum = size_count = 0
        limits = VIRTUAL_SCALE.limits()
        for set_name in SETS:
            for query in mixed_query_set(DATASET, set_name):
                result = matcher.match(query, dataset(DATASET), limits)
                size_sum += result.stats.nogood_size_sum
                size_count += result.stats.nogood_size_count
        out[method] = (size_sum, size_count)
    return out


def test_ablation_nogood_size(benchmark):
    results = benchmark.pedantic(run_sizes, rounds=1, iterations=1)

    rows = []
    averages = {}
    for method, (size_sum, size_count) in results.items():
        avg = size_sum / size_count if size_count else 0.0
        averages[method] = avg
        rows.append([method, size_count, f"{avg:.2f}"])
    publish(
        "ablation_nogood_size",
        format_table(
            ["Method", "Nogoods discovered", "Avg assignments/nogood"],
            rows,
            title=(
                "Ablation (sec. 3.4): discovered nogood sizes — GuP deadend "
                f"masks vs DAF failing sets ({DATASET} {'+'.join(SETS)})"
            ),
        ),
    )

    # Paper shape: GuP's nogoods are smaller on average.
    assert averages["GuP"] < averages["DAF"], averages
