"""Fig. 5: per-dataset breakdown of the processing-cost ranges.

Paper shape: per (dataset, query set), GuP almost always has the fewest
queries above the highest threshold; the baselines accumulate kills on
the harder sets (WordNet above all).
"""

from __future__ import annotations

from benchmarks.conftest import (
    VIRTUAL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.bench.stats import threshold_counts

BREAKDOWN = [
    ("yeast", "16S"),
    ("yeast", "24D"),
    ("wordnet", "16S"),
    ("wordnet", "24S"),
    ("wordnet", "16D"),
    ("patents", "16D"),
]


def run_breakdown():
    table = {}
    for ds, set_name in BREAKDOWN:
        queries = mixed_query_set(ds, set_name)
        for method in PAPER_METHODS:
            res = run_query_set(
                get_matcher(method),
                dataset(ds),
                queries,
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            table[(ds, set_name, method)] = res.records
    return table


def test_fig5_breakdown(benchmark):
    table = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    thresholds = VIRTUAL_SCALE.cost_thresholds
    kill = VIRTUAL_SCALE.kill_cost

    rows = []
    top_counts = {}
    for ds, set_name in BREAKDOWN:
        for method in PAPER_METHODS:
            c = threshold_counts(
                table[(ds, set_name, method)],
                thresholds,
                kill,
                cost_of=VIRTUAL_SCALE.cost,
            )
            top_counts[(ds, set_name, method)] = c[thresholds[-1]]
            rows.append(
                [f"{ds}/{set_name}", method] + [c[t] for t in thresholds]
            )
    header = ["Set", "Method"] + [f">={int(t)}rec" for t in thresholds]
    publish(
        "fig5_breakdown",
        format_table(header, rows, title="Fig. 5 (virtual time): per-set breakdown"),
    )

    # Paper shape: on the hard WordNet sets, GuP is never beaten in the
    # top range (fewest killed queries).
    for ds, set_name in BREAKDOWN:
        if ds != "wordnet":
            continue
        gup = top_counts[(ds, set_name, "GuP")]
        assert gup == min(
            top_counts[(ds, set_name, m)] for m in PAPER_METHODS
        ), (ds, set_name)
