"""Fig. 5: per-dataset breakdown of the processing-cost ranges.

Paper shape: per (dataset, query set), GuP almost always has the fewest
queries above the highest threshold; the baselines accumulate kills on
the harder sets (WordNet above all).

Besides the threshold table, the run emits ``BENCH_breakdown.json`` at
the repo root: per (dataset, query set, method) the *build vs. search*
wall-second split (from ``QueryRunRecord.build_seconds`` /
``search_seconds``) plus recursion totals, so the build/search balance
is tracked across PRs like the other ``BENCH_*.json`` trajectories —
the dense build path (DESIGN.md §8) moves the ``build_fraction``
column, the search-side optimizations move the rest.

Run: ``pytest benchmarks/bench_fig5_breakdown.py`` or
``python benchmarks/bench_fig5_breakdown.py [--out PATH]``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import (  # noqa: E402
    VIRTUAL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import PAPER_METHODS, get_matcher  # noqa: E402
from repro.bench.report import format_table  # noqa: E402
from repro.bench.runner import run_query_set  # noqa: E402
from repro.bench.stats import threshold_counts  # noqa: E402

BREAKDOWN = [
    ("yeast", "16S"),
    ("yeast", "24D"),
    ("wordnet", "16S"),
    ("wordnet", "24S"),
    ("wordnet", "16D"),
    ("patents", "16D"),
]

DEFAULT_OUT = ROOT / "BENCH_breakdown.json"


def run_breakdown():
    table = {}
    for ds, set_name in BREAKDOWN:
        queries = mixed_query_set(ds, set_name)
        for method in PAPER_METHODS:
            res = run_query_set(
                get_matcher(method),
                dataset(ds),
                queries,
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            table[(ds, set_name, method)] = res.records
    return table


def build_search_report(table) -> dict:
    """The machine-readable build/search split, per set and overall."""
    sets = {}
    overall = {}
    for (ds, set_name, method), records in table.items():
        build = sum(r.build_seconds for r in records)
        search = sum(r.search_seconds for r in records)
        entry = {
            "build_seconds": round(build, 6),
            "search_seconds": round(search, 6),
            "build_fraction": round(build / (build + search), 4)
            if build + search > 0
            else 0.0,
            "recursions": sum(r.recursions for r in records),
            "queries": len(records),
        }
        sets.setdefault(f"{ds}/{set_name}", {})[method] = entry
        bucket = overall.setdefault(
            method, {"build_seconds": 0.0, "search_seconds": 0.0}
        )
        bucket["build_seconds"] += build
        bucket["search_seconds"] += search
    for method, bucket in overall.items():
        total = bucket["build_seconds"] + bucket["search_seconds"]
        bucket["build_seconds"] = round(bucket["build_seconds"], 6)
        bucket["search_seconds"] = round(bucket["search_seconds"], 6)
        bucket["build_fraction"] = (
            round(bucket["build_seconds"] / total, 4) if total > 0 else 0.0
        )
    return {
        "harness": "virtual-time fig5 grid (mixed easy + mined-hard sets)",
        "metric_notes": (
            "wall seconds split into GCS/CS construction (build) and "
            "enumeration (search); recursions are the virtual-time cost"
        ),
        "sets": sets,
        "overall": overall,
    }


def emit_breakdown_json(table, out: Path = DEFAULT_OUT) -> dict:
    report = build_search_report(table)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_fig5_breakdown(benchmark):
    table = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    thresholds = VIRTUAL_SCALE.cost_thresholds
    kill = VIRTUAL_SCALE.kill_cost

    rows = []
    top_counts = {}
    for ds, set_name in BREAKDOWN:
        for method in PAPER_METHODS:
            c = threshold_counts(
                table[(ds, set_name, method)],
                thresholds,
                kill,
                cost_of=VIRTUAL_SCALE.cost,
            )
            top_counts[(ds, set_name, method)] = c[thresholds[-1]]
            rows.append(
                [f"{ds}/{set_name}", method] + [c[t] for t in thresholds]
            )
    header = ["Set", "Method"] + [f">={int(t)}rec" for t in thresholds]
    publish(
        "fig5_breakdown",
        format_table(header, rows, title="Fig. 5 (virtual time): per-set breakdown"),
    )
    emit_breakdown_json(table)

    # Paper shape: on the hard WordNet sets, GuP is never beaten in the
    # top range (fewest killed queries).
    for ds, set_name in BREAKDOWN:
        if ds != "wordnet":
            continue
        gup = top_counts[(ds, set_name, "GuP")]
        assert gup == min(
            top_counts[(ds, set_name, m)] for m in PAPER_METHODS
        ), (ds, set_name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    table = run_breakdown()
    report = emit_breakdown_json(table, args.out)
    for set_key, methods in report["sets"].items():
        gup = methods["GuP"]
        print(
            f"{set_key:16s} GuP build {gup['build_seconds']:.3f}s / "
            f"search {gup['search_seconds']:.3f}s "
            f"(build fraction {gup['build_fraction']:.0%})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
