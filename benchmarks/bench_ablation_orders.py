"""Substrate ablation: matching-order choice under GuP.

GuP adopts the VC order [36] (§3.1) but notes ordering is orthogonal to
guard pruning ("guard-based pruning can be used in combination with
arbitrary existing approaches").  This bench runs full GuP under each
of the three implemented orders on the hard workload and reports
search-space sizes — quantifying how much of GuP's win is pruning
rather than ordering.
"""

from __future__ import annotations

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.baselines.registry import GuPMatcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.core.config import GuPConfig

DATASET = "wordnet"
SETS = ("16S", "24S", "16D")
ORDERS = ("vc", "gql", "ri")


def run_order_ablation():
    out = {}
    for order in ORDERS:
        for guards, config in (
            (True, GuPConfig(ordering=order)),
            (False, GuPConfig.baseline()),
        ):
            if not guards:
                from dataclasses import replace

                config = replace(config, ordering=order)
            matcher = GuPMatcher(config, name=f"{order}/{guards}")
            total = 0
            for set_name in SETS:
                res = run_query_set(
                    matcher,
                    dataset(DATASET),
                    mixed_query_set(DATASET, set_name),
                    scale=VIRTUAL_SCALE,
                    set_name=set_name,
                    stop_on_dnf=False,
                )
                total += res.total_recursions()
            out[(order, guards)] = total
    return out


def test_ablation_orders(benchmark):
    totals = benchmark.pedantic(run_order_ablation, rounds=1, iterations=1)

    rows = []
    for order in ORDERS:
        with_guards = totals[(order, True)]
        without = totals[(order, False)]
        saved = 100.0 * (1 - with_guards / without) if without else 0.0
        rows.append([order, without, with_guards, f"{saved:.1f}%"])
    publish(
        "ablation_orders",
        format_table(
            ["Order", "Recursions (no guards)", "Recursions (GuP)",
             "Guard savings"],
            rows,
            title=(
                f"Substrate ablation: matching orders on {DATASET} "
                f"({'+'.join(SETS)})"
            ),
        ),
    )

    # Guards help under *every* order (the paper's orthogonality claim).
    for order in ORDERS:
        assert totals[(order, True)] <= totals[(order, False)], order