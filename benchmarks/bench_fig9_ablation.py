"""Fig. 9: futile recursions per guard combination (the ablation).

Paper shape: "Baseline" (no guards) has the most futile recursions;
reservation guards ("R") remove a workload-dependent chunk; nogood
guards on vertices ("R+NV") contribute the most; edge guards
("R+NV+NE") the second most; backjumping ("All") adds a little more.
"""

from __future__ import annotations

from benchmarks.conftest import VIRTUAL_SCALE, dataset, mixed_query_set, publish
from repro.baselines.registry import GuPMatcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.core.config import GuPConfig

ABLATIONS = (
    ("Baseline", GuPConfig.baseline()),
    ("R", GuPConfig.reservation_only()),
    ("R+NV", GuPConfig.r_nv()),
    ("R+NV+NE", GuPConfig.r_nv_ne()),
    ("All", GuPConfig.full()),
)
DATASET = "wordnet"
SETS = ("8S", "16S", "24S", "8D", "16D", "24D")


def run_ablation():
    futile = {name: {} for name, _ in ABLATIONS}
    for name, config in ABLATIONS:
        matcher = GuPMatcher(config, name=name)
        for set_name in SETS:
            res = run_query_set(
                matcher,
                dataset(DATASET),
                mixed_query_set(DATASET, set_name),
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            futile[name][set_name] = res.total_futile()
    return futile


def test_fig9_ablation(benchmark):
    futile = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [
        [name] + [futile[name][s] for s in SETS] + [sum(futile[name].values())]
        for name, _ in ABLATIONS
    ]
    publish(
        "fig9_ablation",
        format_table(
            ["Config"] + list(SETS) + ["Total"],
            rows,
            title=f"Fig. 9: futile recursions per guard combination on {DATASET}",
        ),
    )

    total = {name: sum(per.values()) for name, per in futile.items()}
    # Paper shape: the ladder is monotone and ends strictly below the
    # baseline.
    assert total["R"] <= total["Baseline"]
    assert total["R+NV"] <= total["R"]
    assert total["R+NV+NE"] <= total["R+NV"]
    assert total["All"] <= total["R+NV+NE"]
    assert total["All"] < total["Baseline"]
