"""Observability overhead: metrics-on vs metrics-off hot-path latency.

The ``repro.obs`` layer is supposed to be cheap enough to stay on by
default: per served query the server records four phase histogram
samples plus one request histogram sample, refreshes gauges only at
scrape time, and emits one structured JSON log line.  This benchmark
puts a number on that claim.

One server serves a warm cache-hit workload (the service hot path)
while ``Observability.enabled`` is toggled *per request* (each query
timed on both sides back to back) — same process, same socket, same
connection, so per-instance bias (two servers differ by several
percent on an otherwise identical setup) and CPU-frequency drift land
on both sides equally.  The figure of merit is the *median paired
difference* — ``median(on_i - off_i)`` over the sample pairs, relative
to the off-side p50 — which cancels the common-mode noise each pair
shares; the difference of independently-computed medians swings ±7%
run to run on a shared box, an order of magnitude more than the
effect being measured.  ``check_perf.py --gate obs`` holds the
overhead to ≤5% of p50 (computed fresh — latencies on a shared box
are not stable enough to commit as an absolute baseline).

A second paired comparison prices **EXPLAIN ANALYZE**: the same query
run cache-bypassed plain vs with ``explain="analyze"`` (which runs the
identical search plus stage-count collection, report assembly, and the
``analyze.json`` sidecar write).  ``check_perf.py --gate obs`` holds
analyze-mode to ≤15% of the plain cache-bypass p50.

The measured numbers are merged into ``BENCH_service.json`` under
additive ``obs`` and ``obs_analyze`` keys (the rest of the file is
left untouched).

Run: ``python benchmarks/bench_obs_overhead.py [--batches N]
[--batch-size K] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.obs import Observability  # noqa: E402
from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import ServerThread  # noqa: E402
from repro.workload.datasets import load_dataset  # noqa: E402
from repro.workload.querygen import QuerySetSpec, generate_query_set  # noqa: E402

DATASET = "wordnet"
SCALE = 0.25
SEED = 2023
LIMIT = 1_000
DEFAULT_OUT = ROOT / "BENCH_service.json"
RESULTS = ROOT / "benchmarks" / "results" / "obs_overhead.txt"


def _timed_request(client, query) -> float:
    started = time.perf_counter()
    reply = client.query(query, DATASET, limit=LIMIT)
    elapsed = time.perf_counter() - started
    assert reply.cache == "hit", reply.cache
    return elapsed


def run_overhead(batches: int, batch_size: int) -> dict:
    """Paired-sample A/B comparison; returns the ``obs`` report dict."""
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    queries = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=2,
                           seed=SEED)
    )
    workload = [queries[i % len(queries)] for i in range(batch_size)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)
        obs = Observability()
        thread = ServerThread(GraphCatalog(tmp), max_inflight=2, obs=obs)
        latencies = {"on": [], "off": []}
        with thread:
            with ServiceClient(*thread.address) as client:
                # Warm up: engines resident, every timed request a
                # query-cache hit — the pure service hot path.
                for query in workload:
                    client.query(query, DATASET, limit=LIMIT)
                # Toggle the master switch per request — each query is
                # timed on both sides back to back, with the order
                # alternating, so drift (CPU frequency ramps,
                # page-cache warming) lands on both sides equally and
                # cannot masquerade as observability overhead.
                index = 0
                for _ in range(batches):
                    for query in workload:
                        order = (
                            ("on", "off") if index % 2 == 0
                            else ("off", "on")
                        )
                        index += 1
                        for name in order:
                            obs.enabled = name == "on"
                            latencies[name].append(
                                _timed_request(client, query)
                            )
        obs.enabled = True

    p50_on = statistics.median(latencies["on"])
    p50_off = statistics.median(latencies["off"])
    # Each (on_i, off_i) pair ran back to back, so their difference
    # cancels whatever the box was doing at that moment; the median of
    # those differences isolates the per-request observability cost.
    paired_diff = statistics.median(
        on - off for on, off in zip(latencies["on"], latencies["off"])
    )
    return {
        "workload": {
            "batches": batches,
            "batch_size": batch_size,
            "requests_per_side": batches * batch_size,
            "limit": LIMIT,
            "path": ("warm query-cache hits, one server, enabled toggled "
                     "per request (paired samples)"),
        },
        "p50_on_ms": round(p50_on * 1e3, 4),
        "p50_off_ms": round(p50_off * 1e3, 4),
        "paired_overhead_ms": round(paired_diff * 1e3, 4),
        "overhead_ratio": round(1.0 + paired_diff / p50_off, 4),
    }


def run_analyze_overhead(batches: int, batch_size: int) -> dict:
    """Paired plain vs ``explain="analyze"`` comparison (cache bypassed).

    Both sides run the identical engine search (the differential tests
    prove byte-identical results); analyze adds the stage-count
    collection, report assembly, reply payload, and the sidecar write.
    Returns the ``obs_analyze`` report dict.
    """
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    queries = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=2,
                           seed=SEED)
    )
    workload = [queries[i % len(queries)] for i in range(batch_size)]

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)
        thread = ServerThread(
            GraphCatalog(tmp), max_inflight=2, obs=Observability()
        )
        latencies = {"plain": [], "analyze": []}
        with thread:
            with ServiceClient(*thread.address) as client:
                for query in workload:  # engines resident before timing
                    client.query(query, DATASET, limit=LIMIT, cache=False)
                index = 0
                for _ in range(batches):
                    for query in workload:
                        order = (
                            ("plain", "analyze") if index % 2 == 0
                            else ("analyze", "plain")
                        )
                        index += 1
                        for name in order:
                            explain = (
                                "analyze" if name == "analyze" else None
                            )
                            started = time.perf_counter()
                            reply = client.query(
                                query, DATASET, limit=LIMIT, cache=False,
                                explain=explain,
                            )
                            elapsed = time.perf_counter() - started
                            assert reply.cache == "bypass", reply.cache
                            if explain is not None:
                                assert reply.explain is not None
                            latencies[name].append(elapsed)

    p50_plain = statistics.median(latencies["plain"])
    p50_analyze = statistics.median(latencies["analyze"])
    paired_diff = statistics.median(
        a - p for a, p in zip(latencies["analyze"], latencies["plain"])
    )
    return {
        "workload": {
            "batches": batches,
            "batch_size": batch_size,
            "requests_per_side": batches * batch_size,
            "limit": LIMIT,
            "path": ("cache-bypassed engine runs, one server, plain vs "
                     "explain=analyze (paired samples)"),
        },
        "p50_plain_ms": round(p50_plain * 1e3, 4),
        "p50_analyze_ms": round(p50_analyze * 1e3, 4),
        "paired_overhead_ms": round(paired_diff * 1e3, 4),
        "overhead_ratio": round(1.0 + paired_diff / p50_plain, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=8,
                        help="interleaved batches per side")
    parser.add_argument("--batch-size", type=int, default=25,
                        help="requests per batch")
    parser.add_argument("--analyze-batches", type=int, default=2,
                        help="interleaved batches per side (analyze A/B)")
    parser.add_argument("--analyze-batch-size", type=int, default=10,
                        help="requests per batch (analyze A/B)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = run_overhead(args.batches, args.batch_size)
    analyze = run_analyze_overhead(
        args.analyze_batches, args.analyze_batch_size
    )

    merged = {}
    if args.out.exists():
        merged = json.loads(args.out.read_text(encoding="utf-8"))
    merged["obs"] = report
    merged["obs_analyze"] = analyze
    args.out.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")

    overhead = (report["overhead_ratio"] - 1.0) * 100.0
    analyze_overhead = (analyze["overhead_ratio"] - 1.0) * 100.0
    lines = [
        f"observability overhead ({DATASET} x{SCALE}, warm hits, "
        f"{report['workload']['requests_per_side']} requests/side):",
        f"  p50 metrics on:  {report['p50_on_ms']:7.3f} ms",
        f"  p50 metrics off: {report['p50_off_ms']:7.3f} ms",
        f"  median paired overhead: {report['paired_overhead_ms']:+.4f} ms "
        f"= {overhead:+.2f}% of p50 (ratio {report['overhead_ratio']})",
        f"explain-analyze overhead (cache bypassed, "
        f"{analyze['workload']['requests_per_side']} requests/side):",
        f"  p50 plain:   {analyze['p50_plain_ms']:7.3f} ms",
        f"  p50 analyze: {analyze['p50_analyze_ms']:7.3f} ms",
        f"  median paired overhead: "
        f"{analyze['paired_overhead_ms']:+.4f} ms "
        f"= {analyze_overhead:+.2f}% of p50 "
        f"(ratio {analyze['overhead_ratio']})",
    ]
    text = "\n".join(lines)
    print(text)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text + "\n", encoding="utf-8")
    print(f"wrote obs + obs_analyze keys into {args.out} and {RESULTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
