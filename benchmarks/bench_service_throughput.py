"""Service throughput: queries/sec against a live server, cold vs warm.

Spins up the real stack — on-disk :class:`GraphCatalog`,
:class:`MatchingServer` on a TCP socket, blocking
:class:`ServiceClient` — and measures end-to-end queries/sec over a
fig6-style query set (each query repeated with permuted vertex
numbering, as a real workload would re-issue it):

* **cold** — fresh server process state: the first pass loads persisted
  catalog artifacts from disk, runs every query on the engine, and
  populates the query cache;
* **warm** — the same workload again: engines resident, every query a
  canonicalization cache hit (the server performs zero
  ``DataArtifacts`` builds or rebuilds, asserted from ``stats``);
* **procpool** — the cache-bypassing heavy path (``workers=2``),
  root-partitioned over the process pool.

Every pass first verifies the served results are byte-identical to
direct ``GuPEngine.match`` before timing anything.  Emits
``BENCH_service.json`` at the repo root (alongside
``BENCH_hotpath.json``) and a text table under ``benchmarks/results/``.

Run: ``python benchmarks/bench_service_throughput.py [--count N]
[--repeats R] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.core.engine import GuPEngine  # noqa: E402
from repro.matching.limits import SearchLimits  # noqa: E402
from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import ServerThread  # noqa: E402
from repro.workload.datasets import load_dataset  # noqa: E402
from repro.workload.querygen import QuerySetSpec, generate_query_set  # noqa: E402

DATASET = "wordnet"
SCALE = 0.25
SEED = 2023
LIMIT = 1_000
DEFAULT_OUT = ROOT / "BENCH_service.json"
RESULTS = ROOT / "benchmarks" / "results" / "service_throughput.txt"


def build_workload(count: int, repeats: int):
    """``count`` base queries, each re-issued ``repeats`` times with a
    shuffled vertex numbering (isomorphic re-requests, the cache's
    bread and butter)."""
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    base = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=count,
                           seed=SEED)
    )
    rng = random.Random(SEED)
    workload = []
    for repeat in range(repeats):
        for i, query in enumerate(base):
            if repeat == 0:
                workload.append((i, query))
            else:
                perm = list(range(query.num_vertices))
                rng.shuffle(perm)
                workload.append((i, query.relabeled(perm)))
    return data, base, workload


def timed_pass(client, workload, **query_kwargs):
    """(seconds, qps, cache disposition counts) over one workload pass."""
    dispositions = {}
    started = time.perf_counter()
    for _, query in workload:
        reply = client.query(query, DATASET, limit=LIMIT, **query_kwargs)
        dispositions[reply.cache] = dispositions.get(reply.cache, 0) + 1
    seconds = time.perf_counter() - started
    return seconds, len(workload) / seconds, dispositions


def run(count: int, repeats: int, workers: int):
    data, base, workload = build_workload(count, repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-catalog-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)  # persist, then start cold
        catalog = GraphCatalog(tmp)
        with ServerThread(catalog, max_inflight=2) as thread:
            with ServiceClient(*thread.address) as client:
                # Exactness first: served == direct, embedding for
                # embedding, before any timing claims.
                engine = GuPEngine(data)
                limits = SearchLimits(max_embeddings=LIMIT)
                direct = {
                    i: engine.match(q, limits=limits)
                    for i, q in enumerate(base)
                }
                for i, query in workload[: len(base)]:
                    reply = client.query(query, DATASET, limit=LIMIT,
                                         cache=False)
                    expected = direct[i]
                    assert reply.embeddings == expected.embeddings
                    assert reply.num_embeddings == expected.num_embeddings
                    assert reply.status == expected.status.value

                baseline = client.stats()
        # Fresh server for the timed cold pass (the verification above
        # warmed the engines).
        catalog = GraphCatalog(tmp)
        with ServerThread(catalog, max_inflight=2) as thread:
            with ServiceClient(*thread.address) as client:
                cold_seconds, cold_qps, cold_kinds = timed_pass(
                    client, workload
                )
                warm_seconds, warm_qps, warm_kinds = timed_pass(
                    client, workload
                )
                pool_seconds, pool_qps, _ = timed_pass(
                    client, workload[: len(base)], workers=workers,
                    cache=False,
                )
                stats = client.stats()

    assert stats["catalog"]["artifact_builds"] == 0
    assert stats["catalog"]["artifact_rebuilds"] == 0
    assert warm_kinds.get("hit", 0) == len(workload), warm_kinds

    qcache = stats["qcache"]
    hit_rate = qcache["hits"] / max(qcache["hits"] + qcache["misses"], 1)
    return {
        "dataset": DATASET,
        "scale": SCALE,
        "workload": {
            "base_queries": len(base),
            "requests_per_pass": len(workload),
            "isomorphic_reissues": repeats - 1,
            "limit": LIMIT,
            "procpool_workers": workers,
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "qps": round(cold_qps, 2),
            "dispositions": cold_kinds,
        },
        "warm": {
            "seconds": round(warm_seconds, 4),
            "qps": round(warm_qps, 2),
            "dispositions": warm_kinds,
        },
        "procpool": {
            "seconds": round(pool_seconds, 4),
            "qps": round(pool_qps, 2),
        },
        "warm_speedup": round(warm_qps / cold_qps, 3),
        "qcache_hit_rate": round(hit_rate, 4),
        "server_stats": {
            "catalog": stats["catalog"],
            "server": stats["server"],
        },
        "verified": "served results byte-identical to direct GuPEngine.match",
        "baseline_stats_after_verify": baseline["server"]["served"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=4,
                        help="base fig6-style queries")
    parser.add_argument("--repeats", type=int, default=3,
                        help="passes of isomorphic re-issues per pass")
    parser.add_argument("--workers", type=int, default=2,
                        help="procpool workers for the heavy path")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    report = run(args.count, args.repeats, args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"service throughput ({DATASET} x{SCALE}, "
        f"{report['workload']['requests_per_pass']} requests/pass, "
        f"limit {LIMIT}):",
        f"  cold:     {report['cold']['qps']:8.2f} q/s "
        f"({report['cold']['seconds']}s)  {report['cold']['dispositions']}",
        f"  warm:     {report['warm']['qps']:8.2f} q/s "
        f"({report['warm']['seconds']}s)  {report['warm']['dispositions']}",
        f"  procpool: {report['procpool']['qps']:8.2f} q/s "
        f"(workers={report['workload']['procpool_workers']}, cache off)",
        f"  warm speedup {report['warm_speedup']}x, "
        f"qcache hit rate {report['qcache_hit_rate']:.1%}",
        f"  artifact builds/rebuilds during serving: "
        f"{report['server_stats']['catalog']['artifact_builds']}/"
        f"{report['server_stats']['catalog']['artifact_rebuilds']}",
    ]
    text = "\n".join(lines)
    print(text)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {args.out} and {RESULTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
