"""Table 3: peak memory consumption and the guard share.

Paper shape: on the small graph (Yeast) guards account for a noticeable
fraction of peak memory (~25% there); on the large graph (Patents) the
data-graph-driven allocations dominate and the guard share collapses
below 1%.  The absolute share depends on the host's allocator; the
reproduction target is the *ordering* (small-graph share >> large-graph
share) and the per-guard byte accounting.
"""

from __future__ import annotations

from benchmarks.conftest import (
    DATASET_SCALE,
    hard_query_set,
    publish,
)
from repro.bench.memory import measure_memory
from repro.bench.report import format_table
from repro.workload.datasets import load_dataset

CASES = [
    ("yeast", "8S"),
    ("yeast", "16D"),
    ("patents", "8S"),
    ("patents", "16D"),
]


def run_memory():
    reports = {}
    for ds, set_name in CASES:
        # Hard queries so the search actually records nogood guards;
        # the data graph is constructed *inside* the measurement (the
        # paper's peak includes the data-graph structure and buffers).
        queries = hard_query_set(ds, set_name)
        query = max(queries, key=lambda q: q.num_edges)
        reports[(ds, set_name)] = measure_memory(
            query,
            data_factory=lambda ds=ds: load_dataset(
                ds, scale=DATASET_SCALE[ds], seed=2023
            ),
        )
    return reports


def test_table3_memory(benchmark):
    reports = benchmark.pedantic(run_memory, rounds=1, iterations=1)

    rows = []
    for (ds, set_name), rep in reports.items():
        rows.append(
            [
                ds,
                set_name,
                f"{rep.whole_bytes / 1e6:.2f} MB",
                f"{rep.reservation_bytes / 1e3:.1f} KB",
                f"{rep.nogood_vertex_bytes / 1e3:.1f} KB",
                f"{rep.nogood_edge_bytes / 1e3:.1f} KB",
                f"{100 * rep.guard_fraction:.2f}%",
            ]
        )
    publish(
        "table3_memory",
        format_table(
            ["Graph", "Set", "Whole", "Reservation", "N.vertices", "N.edges",
             "Guard/Whole"],
            rows,
            title="Table 3: peak memory and guard share",
        ),
    )

    yeast_share = max(
        rep.guard_fraction for (ds, _s), rep in reports.items() if ds == "yeast"
    )
    patents_share = max(
        rep.guard_fraction for (ds, _s), rep in reports.items() if ds == "patents"
    )
    # Paper shape: the guard share shrinks on the big graph.
    assert patents_share < yeast_share
    # And guards never dominate the footprint.
    for rep in reports.values():
        assert rep.guard_fraction < 0.5
