"""Fig. 7: number of recursions — GuP vs GQL-G vs GQL-R.

Paper shape: GuP produces the fewest recursions for most query sets
(DAF and RM are excluded there because they do not count recursions
comparably; we keep the same method trio).  §4.2.3's companion statistic
— the fraction of local candidates adaptively pruned by guards (11.5%
on average in the paper) — is reported alongside.
"""

from __future__ import annotations

from benchmarks.conftest import (
    SET_SPECS,
    VIRTUAL_SCALE,
    dataset,
    mixed_query_set,
    publish,
)
from repro.baselines.registry import get_matcher
from repro.bench.report import format_table
from repro.bench.runner import run_query_set
from repro.core.config import GuPConfig
from repro.core.engine import GuPEngine

METHODS = ("GuP", "GQL-G", "GQL-R")
DATASET = "wordnet"


def run_recursion_counts():
    totals = {}
    for set_name in SET_SPECS:
        queries = mixed_query_set(DATASET, set_name)
        for method in METHODS:
            res = run_query_set(
                get_matcher(method),
                dataset(DATASET),
                queries,
                scale=VIRTUAL_SCALE,
                set_name=set_name,
                stop_on_dnf=False,
            )
            totals[(method, set_name)] = res.total_recursions()
    return totals


def measure_prune_fraction():
    """§4.2.3: fraction of local candidates pruned by guards."""
    engine = GuPEngine(dataset(DATASET), GuPConfig.full())
    seen = pruned = 0
    for set_name in ("16S", "24S", "16D"):
        for query in mixed_query_set(DATASET, set_name):
            result = engine.match(query, limits=VIRTUAL_SCALE.limits())
            seen += result.stats.local_candidates_seen
            pruned += result.stats.pruned_by_guards()
    return pruned / seen if seen else 0.0


def test_fig7_recursions(benchmark):
    totals = benchmark.pedantic(run_recursion_counts, rounds=1, iterations=1)
    fraction = measure_prune_fraction()

    rows = [
        [m] + [totals[(m, s)] for s in SET_SPECS] for m in METHODS
    ]
    text = format_table(
        ["Method"] + list(SET_SPECS),
        rows,
        title=f"Fig. 7: total recursions per query set on {DATASET}",
    )
    text += (
        f"\n\nGuard-pruned local candidates (sec. 4.2.3): "
        f"{100 * fraction:.1f}% (paper: 11.5%)"
    )
    publish("fig7_recursions", text)

    # Paper shape: GuP needs the fewest recursions on most sets.
    wins = sum(
        1
        for s in SET_SPECS
        if totals[("GuP", s)] == min(totals[(m, s)] for m in METHODS)
    )
    assert wins >= len(SET_SPECS) // 2, {
        s: {m: totals[(m, s)] for m in METHODS} for s in SET_SPECS
    }
    assert fraction > 0.0
