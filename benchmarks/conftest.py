"""Shared fixtures for the benchmark suite.

Every ``bench_*.py`` regenerates one table or figure of the paper's §4
(see DESIGN.md §4 for the index).  Two deliberate substitutions, both
documented in DESIGN.md §2 / EXPERIMENTS.md:

* **Virtual time.**  The comparative benches (Table 2, Figs. 4/5/6) run
  in recursion-budget mode: kills, DNF budgets, and thresholds count
  *recursions* — the paper's own machine-independent cost unit — which
  models the compared C++ engines' near-equal per-recursion cost.
  CPython's per-engine constant factors (GuP's guard bookkeeping is
  ~10x costlier per recursion in pure Python than the array scans of
  the baselines) would otherwise measure the interpreter, not the
  algorithms.  Wall-clock results are still recorded alongside.

* **Mined hard tails.**  The paper finds its discriminating queries in
  the 0.2% tail of 50,000-query sets; we extract that tail directly
  with :func:`repro.workload.mine_hard_queries` (budgeted-probe mining
  plus long-cycle extraction, the paper's prototypical hard structure)
  and mix it with ordinary random-walk queries.

Results are printed and written to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import functools
import zlib
from pathlib import Path

import pytest

from repro.bench.runner import BenchmarkScale
from repro.workload.datasets import load_dataset
from repro.workload.hardness import mine_hard_queries
from repro.workload.querygen import QuerySetSpec, generate_query_set

RESULTS_DIR = Path(__file__).parent / "results"

# Recursion-budget harness: per-query kill 10k, per-subgroup budget 20k,
# embedding cap 1k (paper: 100k embeddings, 1 h kill, 3 h per-subgroup).
VIRTUAL_SCALE = BenchmarkScale(
    mode="recursions",
    max_embeddings=1_000,
    query_recursion_limit=10_000,
    subgroup_recursion_budget=20_000,
    subgroup_size=8,
    recursion_thresholds=(100, 1_000, 10_000),  # paper: 1 s / 1 min / 1 hr
)

# Wall-clock variant used where absolute time matters (Fig. 6 comment).
WALL_SCALE = BenchmarkScale(
    mode="wall",
    max_embeddings=1_000,
    query_time_limit=1.0,
    subgroup_budget=3.0,
    subgroup_size=8,
    thresholds=(0.01, 0.1, 1.0),
)

EASY_PER_SET = 4
HARD_PER_SET = 4

DATASET_SCALE = {
    "yeast": 1.0,
    "human": 0.6,
    "wordnet": 1.0,
    "patents": 0.25,
}

SET_SPECS = {
    "8S": QuerySetSpec(8, "sparse"),
    "16S": QuerySetSpec(16, "sparse"),
    "24S": QuerySetSpec(24, "sparse"),
    "8D": QuerySetSpec(8, "dense"),
    "16D": QuerySetSpec(16, "dense"),
    "24D": QuerySetSpec(24, "dense"),
}


def stable_seed(*parts: str) -> int:
    """Process-independent seed (``hash()`` is randomized per process)."""
    return zlib.crc32("/".join(parts).encode("utf-8"))


@functools.lru_cache(maxsize=None)
def dataset(name: str):
    return load_dataset(name, scale=DATASET_SCALE[name], seed=2023)


@functools.lru_cache(maxsize=None)
def easy_query_set(dataset_name: str, set_name: str, count: int = EASY_PER_SET):
    """Plain random-walk queries (the bulk of the paper's sets)."""
    spec = SET_SPECS[set_name]
    return tuple(
        generate_query_set(
            dataset(dataset_name), spec, count=count,
            seed=stable_seed(dataset_name, set_name),
        )
    )


@functools.lru_cache(maxsize=None)
def hard_query_set(dataset_name: str, set_name: str, count: int = HARD_PER_SET):
    """The mined hard tail (the 0.2% that decides DNFs)."""
    spec = SET_SPECS[set_name]
    return tuple(
        mine_hard_queries(
            dataset(dataset_name),
            count=count,
            size=spec.size,
            density=spec.density,
            seed=stable_seed(dataset_name, set_name, "hard"),
            candidate_factor=8,
            probe_recursions=12_000,
        )
    )


@functools.lru_cache(maxsize=None)
def mixed_query_set(dataset_name: str, set_name: str):
    """Easy bulk + hard tail: what a large sampled set behaves like."""
    return easy_query_set(dataset_name, set_name) + hard_query_set(
        dataset_name, set_name
    )


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def results_publisher():
    return publish
