"""Service saturation: latency and shed-rate vs. offered load.

Drives a small-capacity live server (on-disk catalog, TCP socket,
blocking clients) with closed-loop client threads at increasing
concurrency and records, per level:

* **p50/p99 latency** of the *served* requests (ms);
* **shed rate** — the fraction of offered requests the server rejected
  instantly with ``overloaded: true`` instead of queueing them.

The degradation contract this measures (DESIGN.md §10): below capacity
nothing is shed and latency is flat; past capacity the server keeps
serving at its own pace and sheds the excess immediately — offered ==
served + shed always, and shed replies return in microseconds instead
of stacking up as queue delay.

Queries run with the cache bypassed so every admitted request costs
real engine work (a cache-hit workload would never saturate the
executor).  Results are written **additively** into
``BENCH_service.json`` under the new ``"saturation"`` key — the
throughput benchmark owns the rest of the file.

Run: ``python benchmarks/bench_service_saturation.py [--levels 1,4,16]
[--per-client N] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import (  # noqa: E402
    ServiceClient,
    ServiceOverloaded,
)
from repro.service.server import ServerThread  # noqa: E402
from repro.workload.datasets import load_dataset  # noqa: E402
from repro.workload.querygen import QuerySetSpec, generate_query_set  # noqa: E402

DATASET = "wordnet"
SCALE = 0.25
SEED = 2023
LIMIT = 1_000
MAX_INFLIGHT = 2
MAX_PENDING = 2
DEFAULT_LEVELS = (1, 4, 16)
SMOKE_LEVELS = (1, 12)
DEFAULT_OUT = ROOT / "BENCH_service.json"
RESULTS = ROOT / "benchmarks" / "results" / "service_saturation.txt"


def percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def drive_level(address, queries, clients: int, per_client: int):
    """``clients`` closed-loop threads, ``per_client`` requests each."""
    served_latencies = []
    shed = [0]
    lock = threading.Lock()

    def worker(offset: int) -> None:
        with ServiceClient(*address) as client:
            for i in range(per_client):
                query = queries[(offset + i) % len(queries)]
                started = time.perf_counter()
                try:
                    client.query(query, DATASET, limit=LIMIT, cache=False)
                except ServiceOverloaded:
                    with lock:
                        shed[0] += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    served_latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    offered = clients * per_client
    latencies = sorted(served_latencies)
    return {
        "clients": clients,
        "offered": offered,
        "served": len(latencies),
        "shed": shed[0],
        "shed_rate": round(shed[0] / offered, 4),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
    }


def run_saturation(levels, per_client: int):
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    queries = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=4,
                           seed=SEED)
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-catalog-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)
        catalog = GraphCatalog(tmp)
        with ServerThread(
            catalog, max_inflight=MAX_INFLIGHT, max_pending=MAX_PENDING
        ) as thread:
            with ServiceClient(*thread.address) as warmup:
                # One pass outside the measurement so artifact loading
                # never pollutes the first level's latencies.
                for query in queries:
                    warmup.query(query, DATASET, limit=LIMIT, cache=False)
            results = [
                drive_level(thread.address, queries, clients, per_client)
                for clients in levels
            ]
            with ServiceClient(*thread.address) as client:
                stats = client.stats()["server"]

    for level in results:
        assert level["served"] + level["shed"] == level["offered"], level
    total_shed = sum(level["shed"] for level in results)
    assert stats["rejected"] == total_shed, (stats["rejected"], total_shed)

    return {
        "capacity": {
            "max_inflight": MAX_INFLIGHT,
            "max_pending": MAX_PENDING,
        },
        "per_client_requests": per_client,
        "limit": LIMIT,
        "levels": results,
        "invariant": "offered == served + shed at every level",
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", default=",".join(map(str, DEFAULT_LEVELS)),
                        help="comma-separated concurrent-client counts")
    parser.add_argument("--per-client", type=int, default=12,
                        help="requests each client issues")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    levels = tuple(int(x) for x in args.levels.split(","))
    report = run_saturation(levels, args.per_client)

    # Additive: the throughput benchmark owns every other key.
    merged = {}
    if args.out.exists():
        merged = json.loads(args.out.read_text(encoding="utf-8"))
    merged["saturation"] = report
    args.out.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"service saturation ({DATASET} x{SCALE}, capacity "
        f"{MAX_INFLIGHT}+{MAX_PENDING}, {args.per_client} req/client):",
    ]
    for level in report["levels"]:
        lines.append(
            f"  {level['clients']:3d} clients: p50 {level['p50_ms']:8.3f}ms "
            f"p99 {level['p99_ms']:8.3f}ms  shed {level['shed']:4d}/"
            f"{level['offered']:4d} ({level['shed_rate']:.1%})"
        )
    text = "\n".join(lines)
    print(text)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
