"""Service saturation: latency and shed-rate vs. offered load.

Drives a small-capacity live server (on-disk catalog, TCP socket,
blocking clients) with closed-loop client threads at increasing
concurrency and records, per level:

* **p50/p99 latency** of the *served* requests (ms);
* **shed rate** — the fraction of offered requests the server rejected
  instantly with ``overloaded: true`` instead of queueing them.

The degradation contract this measures (DESIGN.md §10): below capacity
nothing is shed and latency is flat; past capacity the server keeps
serving at its own pace and sheds the excess immediately — offered ==
served + shed always, and shed replies return in microseconds instead
of stacking up as queue delay.

Queries run with the cache bypassed so every admitted request costs
real engine work (a cache-hit workload would never saturate the
executor).  Results are written **additively** into
``BENCH_service.json`` under the ``"saturation"`` and ``"fairness"``
keys — the throughput benchmark owns the rest of the file.

The **fairness** column (DESIGN.md §13) runs the same server with two
tenants — a light, high-weight tenant and a greedy, quota-capped bulk
tenant — and measures the light tenant's p50 *solo* vs *contended*
(while the bulk tenant hammers with 4x the clients).  The multi-tenant
contract this measures: the bulk tenant's excess is shed with
tenant-labeled ``quota`` rejections instead of crowding the light
tenant out, so the light tenant's paired latency ratio stays bounded.

Run: ``python benchmarks/bench_service_saturation.py [--levels 1,4,16]
[--per-client N] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.service.catalog import GraphCatalog  # noqa: E402
from repro.service.client import (  # noqa: E402
    ServiceClient,
    ServiceOverloaded,
)
from repro.service.server import ServerThread  # noqa: E402
from repro.service.tenancy import TenantSpec, TenantTable  # noqa: E402
from repro.workload.datasets import load_dataset  # noqa: E402
from repro.workload.querygen import QuerySetSpec, generate_query_set  # noqa: E402

DATASET = "wordnet"
SCALE = 0.25
SEED = 2023
LIMIT = 1_000
MAX_INFLIGHT = 2
MAX_PENDING = 2
DEFAULT_LEVELS = (1, 4, 16)
SMOKE_LEVELS = (1, 12)
DEFAULT_OUT = ROOT / "BENCH_service.json"
RESULTS = ROOT / "benchmarks" / "results" / "service_saturation.txt"

# Two-tenant fairness column: a light, high-weight tenant vs a greedy,
# quota-capped bulk tenant on the same small-capacity server.
LIGHT_TENANT = "light"
BULK_TENANT = "bulk"
LIGHT_WEIGHT = 4
BULK_QUOTA = 2  # bulk max_inflight: its excess is shed, not queued
LIGHT_CLIENTS = 2
BULK_CLIENTS = 8


def percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def drive_level(address, queries, clients: int, per_client: int):
    """``clients`` closed-loop threads, ``per_client`` requests each."""
    served_latencies = []
    queue_waits = []
    shed = [0]
    lock = threading.Lock()

    def worker(offset: int) -> None:
        with ServiceClient(*address) as client:
            for i in range(per_client):
                query = queries[(offset + i) % len(queries)]
                started = time.perf_counter()
                try:
                    reply = client.query(
                        query, DATASET, limit=LIMIT, cache=False
                    )
                except ServiceOverloaded:
                    with lock:
                        shed[0] += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    served_latencies.append(elapsed)
                    queue_waits.append(reply.queue_seconds)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    offered = clients * per_client
    latencies = sorted(served_latencies)
    queued = sorted(queue_waits)
    return {
        "clients": clients,
        "offered": offered,
        "served": len(latencies),
        "shed": shed[0],
        "shed_rate": round(shed[0] / offered, 4),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        # Server-reported admission-queue wait of the served requests:
        # separates "waiting for a matching slot" from "doing work" in
        # the same rows the latency columns come from.
        "queue_p50_ms": round(percentile(queued, 0.50) * 1e3, 3),
        "queue_p99_ms": round(percentile(queued, 0.99) * 1e3, 3),
    }


def drive_mixed(address, queries, groups, per_client: int):
    """Closed-loop clients for several tenants at once.

    ``groups`` maps tenant name -> client-thread count; returns one
    :func:`drive_level`-shaped row per tenant.
    """
    rows = {
        tenant: {"latencies": [], "queue_waits": [], "shed": 0}
        for tenant in groups
    }
    lock = threading.Lock()

    def worker(tenant: str, offset: int) -> None:
        with ServiceClient(*address, tenant=tenant) as client:
            for i in range(per_client):
                query = queries[(offset + i) % len(queries)]
                started = time.perf_counter()
                try:
                    reply = client.query(
                        query, DATASET, limit=LIMIT, cache=False
                    )
                except ServiceOverloaded:
                    with lock:
                        rows[tenant]["shed"] += 1
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    rows[tenant]["latencies"].append(elapsed)
                    rows[tenant]["queue_waits"].append(reply.queue_seconds)

    threads = [
        threading.Thread(target=worker, args=(tenant, i))
        for tenant, clients in sorted(groups.items())
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    out = {}
    for tenant, clients in groups.items():
        offered = clients * per_client
        latencies = sorted(rows[tenant]["latencies"])
        queued = sorted(rows[tenant]["queue_waits"])
        shed = rows[tenant]["shed"]
        out[tenant] = {
            "clients": clients,
            "offered": offered,
            "served": len(latencies),
            "shed": shed,
            "shed_rate": round(shed / offered, 4),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
            "queue_p50_ms": round(percentile(queued, 0.50) * 1e3, 3),
            "queue_p99_ms": round(percentile(queued, 0.99) * 1e3, 3),
        }
    return out


def run_fairness(per_client: int):
    """The two-tenant fairness column (DESIGN.md §13).

    Phase 1: the light tenant alone (its baseline p50).  Phase 2: the
    same light load while the bulk tenant hammers with 4x the clients.
    The admission contract under contention: the bulk tenant's excess
    is shed with tenant-labeled ``quota`` rejections (never silently
    queued in front of the light tenant), the light tenant is **never**
    shed, and its paired contended/solo p50 ratio stays bounded.
    """
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    queries = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=4,
                           seed=SEED)
    )
    tenants = TenantTable([
        TenantSpec(LIGHT_TENANT, weight=LIGHT_WEIGHT),
        TenantSpec(BULK_TENANT, weight=1, max_inflight=BULK_QUOTA),
    ])
    with tempfile.TemporaryDirectory(prefix="repro-bench-catalog-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)
        catalog = GraphCatalog(tmp)
        with ServerThread(
            catalog, max_inflight=MAX_INFLIGHT, max_pending=MAX_PENDING,
            tenants=tenants,
        ) as thread:
            with ServiceClient(*thread.address) as warmup:
                for query in queries:
                    warmup.query(query, DATASET, limit=LIMIT, cache=False)
            solo = drive_mixed(
                thread.address, queries, {LIGHT_TENANT: LIGHT_CLIENTS},
                per_client,
            )[LIGHT_TENANT]
            contended = drive_mixed(
                thread.address, queries,
                {LIGHT_TENANT: LIGHT_CLIENTS, BULK_TENANT: BULK_CLIENTS},
                per_client,
            )
            with ServiceClient(*thread.address) as client:
                tenant_stats = client.stats()["tenants"]

    light, bulk = contended[LIGHT_TENANT], contended[BULK_TENANT]
    ratio = (
        round(light["p50_ms"] / solo["p50_ms"], 3)
        if solo["p50_ms"] > 0 else None
    )
    return {
        "tenants": {
            LIGHT_TENANT: {"weight": LIGHT_WEIGHT, "clients": LIGHT_CLIENTS},
            BULK_TENANT: {
                "weight": 1, "max_inflight": BULK_QUOTA,
                "clients": BULK_CLIENTS,
            },
        },
        "per_client_requests": per_client,
        "solo": solo,
        "contended_light": light,
        "contended_bulk": bulk,
        "p50_ratio_contended_vs_solo": ratio,
        "tenant_stats": {
            name: tenant_stats.get(name, {})
            for name in (LIGHT_TENANT, BULK_TENANT)
        },
        "invariant": (
            "bulk excess is shed tenant-labeled; the light tenant is "
            "never shed and its paired p50 ratio stays bounded"
        ),
    }


def run_saturation(levels, per_client: int):
    data = load_dataset(DATASET, scale=SCALE, seed=SEED)
    queries = list(
        generate_query_set(data, QuerySetSpec(8, "sparse"), count=4,
                           seed=SEED)
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-catalog-") as tmp:
        GraphCatalog(tmp).add(DATASET, data)
        catalog = GraphCatalog(tmp)
        with ServerThread(
            catalog, max_inflight=MAX_INFLIGHT, max_pending=MAX_PENDING
        ) as thread:
            with ServiceClient(*thread.address) as warmup:
                # One pass outside the measurement so artifact loading
                # never pollutes the first level's latencies.
                for query in queries:
                    warmup.query(query, DATASET, limit=LIMIT, cache=False)
            results = [
                drive_level(thread.address, queries, clients, per_client)
                for clients in levels
            ]
            with ServiceClient(*thread.address) as client:
                stats = client.stats()["server"]

    for level in results:
        assert level["served"] + level["shed"] == level["offered"], level
    total_shed = sum(level["shed"] for level in results)
    assert stats["rejected"] == total_shed, (stats["rejected"], total_shed)

    return {
        "capacity": {
            "max_inflight": MAX_INFLIGHT,
            "max_pending": MAX_PENDING,
        },
        "per_client_requests": per_client,
        "limit": LIMIT,
        "levels": results,
        "invariant": "offered == served + shed at every level",
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", default=",".join(map(str, DEFAULT_LEVELS)),
                        help="comma-separated concurrent-client counts")
    parser.add_argument("--per-client", type=int, default=12,
                        help="requests each client issues")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    levels = tuple(int(x) for x in args.levels.split(","))
    report = run_saturation(levels, args.per_client)
    fairness = run_fairness(args.per_client)

    # Additive: the throughput benchmark owns every other key.
    merged = {}
    if args.out.exists():
        merged = json.loads(args.out.read_text(encoding="utf-8"))
    merged["saturation"] = report
    merged["fairness"] = fairness
    args.out.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"service saturation ({DATASET} x{SCALE}, capacity "
        f"{MAX_INFLIGHT}+{MAX_PENDING}, {args.per_client} req/client):",
    ]
    for level in report["levels"]:
        lines.append(
            f"  {level['clients']:3d} clients: p50 {level['p50_ms']:8.3f}ms "
            f"p99 {level['p99_ms']:8.3f}ms  "
            f"queue p50 {level['queue_p50_ms']:8.3f}ms "
            f"p99 {level['queue_p99_ms']:8.3f}ms  shed {level['shed']:4d}/"
            f"{level['offered']:4d} ({level['shed_rate']:.1%})"
        )
    light = fairness["contended_light"]
    bulk = fairness["contended_bulk"]
    lines.append(
        f"two-tenant fairness ({LIGHT_TENANT} w{LIGHT_WEIGHT}x"
        f"{LIGHT_CLIENTS} vs {BULK_TENANT} quota{BULK_QUOTA}x"
        f"{BULK_CLIENTS}):"
    )
    lines.append(
        f"  {LIGHT_TENANT} p50 solo {fairness['solo']['p50_ms']:8.3f}ms  "
        f"contended {light['p50_ms']:8.3f}ms  "
        f"(ratio {fairness['p50_ratio_contended_vs_solo']}x, "
        f"shed {light['shed']})"
    )
    lines.append(
        f"  {BULK_TENANT} shed {bulk['shed']:4d}/{bulk['offered']:4d} "
        f"({bulk['shed_rate']:.1%}), served {bulk['served']}"
    )
    text = "\n".join(lines)
    print(text)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
