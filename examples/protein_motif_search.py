#!/usr/bin/env python
"""Protein-motif search on the Yeast-like dataset.

Protein-protein interaction graphs were the original driver of subgraph
matching (the Yeast benchmark graph): vertices are proteins labeled by
family, edges are interactions, and a *motif* is a small labeled pattern
whose occurrences are biologically meaningful.

This example loads the synthetic Yeast stand-in, extracts a handful of
motifs of different shapes (path, star, triangle-anchored), and
enumerates their embeddings with GuP, reporting counts and search effort.

Run:  python examples/protein_motif_search.py
"""

from collections import Counter

from repro import GuPEngine, SearchLimits
from repro.graph.builder import GraphBuilder
from repro.workload import generate_query, load_dataset


def chain_motif(labels):
    """Path motif: a signalling cascade l0 - l1 - ... - lk."""
    builder = GraphBuilder()
    ids = builder.add_vertices(labels)
    for a, b in zip(ids, ids[1:]):
        builder.add_edge(a, b)
    return builder.build()


def hub_motif(center_label, partner_labels):
    """Star motif: a hub protein with a fixed partner profile."""
    builder = GraphBuilder()
    center = builder.add_vertex(center_label)
    for label in partner_labels:
        leaf = builder.add_vertex(label)
        builder.add_edge(center, leaf)
    return builder.build()


def main() -> None:
    data = load_dataset("yeast", seed=2023)
    print(f"yeast stand-in: {data} (avg degree {data.average_degree():.1f})")

    label_counts = Counter(data.labels)
    common = [label for label, _n in label_counts.most_common(4)]
    print(f"most common protein families: {common}\n")

    engine = GuPEngine(data)
    limits = SearchLimits(max_embeddings=10_000, collect=False)

    motifs = {
        "cascade (path)": chain_motif(common[:3]),
        "hub (star)": hub_motif(common[0], [common[1]] * 2 + [common[2]]),
        "walk-extracted": generate_query(data, 6, "sparse", seed=7),
        "dense module": generate_query(data, 6, "dense", seed=8),
    }

    print(f"{'motif':18s} {'|V|':>3s} {'|E|':>3s} {'occurrences':>11s} "
          f"{'recursions':>10s}")
    for name, motif in motifs.items():
        result = engine.match(motif, limits=limits)
        suffix = "" if result.complete else "+ (capped)"
        print(
            f"{name:18s} {motif.num_vertices:3d} {motif.num_edges:3d} "
            f"{result.num_embeddings:11d}{suffix} "
            f"{result.stats.recursions:10d}"
        )

    # Motif frequency profile: how often does each family pair interact?
    pair_motif_counts = {}
    for a in common[:3]:
        for b in common[:3]:
            if str(a) <= str(b):
                result = engine.match(chain_motif([a, b]), limits=limits)
                pair_motif_counts[(a, b)] = result.num_embeddings
    print("\ninteraction-pair frequencies (ordered embeddings):")
    for (a, b), count in sorted(pair_motif_counts.items()):
        print(f"  {a} - {b}: {count}")


if __name__ == "__main__":
    main()
