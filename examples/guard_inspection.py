#!/usr/bin/env python
"""Walk through GuP's guards on the paper's running example (Fig. 1).

This pedagogical example reconstructs Section 3's worked examples:

* the candidate sets after NLF filtering (§3.1: only v13 is removed),
* the reservation guards of Algorithm 1 (Example 3.13),
* the backtracking search with guard statistics (Example 3.34 / Fig. 3),
* the nogood guards recorded along the way.

Run:  python examples/guard_inspection.py
"""

from repro.core.backtrack import GuPSearch
from repro.core.config import GuPConfig
from repro.core.gcs import GuardedCandidateSpace
from repro.core.nogood import NogoodStore
from repro.core.reservation import generate_reservation_guards
from repro.filtering.candidate_space import CandidateSpace
from repro.filtering.nlf import nlf_candidates
from repro.graph.algorithms import two_core_edges
from repro.workload import paper_example_data, paper_example_query


def main() -> None:
    query = paper_example_query()
    data = paper_example_data()
    print("query Q (Fig. 1a):", query)
    for u in query.vertices():
        print(f"  u{u} [{query.label(u)}] - neighbors "
              f"{['u%d' % w for w in query.neighbors(u)]}")
    print("data G (Fig. 1b):", data)

    # -- candidate filtering (the paper keeps the natural order u0..u4) --
    candidates = nlf_candidates(query, data)
    print("\ncandidate sets after LDF+NLF (sec. 3.1):")
    for u, c in enumerate(candidates):
        print(f"  C(u{u}) = {{{', '.join('v%d' % v for v in c)}}}")
    print("  (v13 was removed from C(u0): it has no label-B neighbor)")

    # -- reservation guards (Algorithm 1, Example 3.13) ------------------
    cs = CandidateSpace(query, data, candidates)
    reservations = generate_reservation_guards(cs, size_limit=3)
    print("\nreservation guards R(u_i, v) (Example 3.13):")
    for i in query.vertices():
        row = []
        for v in cs.candidates[i]:
            guard = sorted(reservations[(i, v)])
            row.append(f"v{v}:{{{','.join('v%d' % w for w in guard)}}}")
        print(f"  u{i}: " + "  ".join(row))

    # -- guarded backtracking (Fig. 3 / Example 3.34) --------------------
    gcs = GuardedCandidateSpace(
        original_query=query,
        query=query,
        data=data,
        order=list(query.vertices()),
        cs=cs,
        reservations=reservations,
        two_core=frozenset(two_core_edges(query)),
    )
    search = GuPSearch(gcs, config=GuPConfig.full())
    embeddings, status = search.run()

    print(f"\nsearch outcome: {len(embeddings)} embedding(s), {status.value}")
    for e in embeddings:
        print("  M = {" + ", ".join(f"(u{i}, v{v})" for i, v in enumerate(e)) + "}")

    stats = search.stats
    print("\nguard activity during the search:")
    print(f"  recursions:              {stats.recursions}")
    print(f"  futile recursions:       {stats.futile_recursions}")
    print(f"  reservation prunes:      {stats.pruned_reservation}")
    print(f"  nogood-vertex prunes:    {stats.pruned_nogood_vertex}")
    print(f"  nogood-edge prunes:      {stats.pruned_nogood_edge}")
    print(f"  NV guards recorded:      {stats.nogoods_recorded_vertex}")
    print(f"  NE guards recorded:      {stats.nogoods_recorded_edge}")
    print(f"  backjumps:               {stats.backjumps}")

    # -- guard inventory (what the run learned) ---------------------------
    from repro.analysis.guards import guard_inventory

    print("\nguard inventory:")
    for line in guard_inventory(gcs, stats).lines():
        print("  " + line)

    # -- compare with conventional backtracking (the unshaded Fig. 3) ----
    plain = GuPSearch(
        gcs, config=GuPConfig.baseline(), nogoods=NogoodStore()
    )
    plain_embeddings, _ = plain.run()
    assert sorted(plain_embeddings) == sorted(embeddings)
    print(f"\nconventional backtracking explores {plain.stats.recursions} "
          f"recursions ({plain.stats.futile_recursions} futile); GuP "
          f"explored {stats.recursions} ({stats.futile_recursions} futile) "
          f"- the shaded nodes of Fig. 3 are the difference.")


if __name__ == "__main__":
    main()
