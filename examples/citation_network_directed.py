#!/usr/bin/env python
"""Directed matching on a synthetic citation network (adapter demo).

The paper's matchers operate on undirected graphs, but §2.2 notes the
method "can easily adapt to other kinds of graphs, such as directed
graphs".  This example exercises :mod:`repro.adapters`: a citation
network (papers cite older papers — directed edges) is searched for
directed patterns such as citation chains, co-citation, and feedback
loops, via the edge-gadget reduction.

Run:  python examples/citation_network_directed.py
"""

import random

from repro.adapters import DiGraph, match_directed
from repro.matching.limits import SearchLimits

FIELDS = ["db", "ml", "systems", "theory"]


def build_citation_network(num_papers=400, citations_per_paper=3, seed=7):
    """Papers cite earlier papers, preferentially in their own field."""
    rng = random.Random(seed)
    labels = [rng.choice(FIELDS) for _ in range(num_papers)]
    edges = []
    for paper in range(1, num_papers):
        cited = set()
        for _ in range(min(citations_per_paper, paper)):
            # Prefer same-field targets (two draws, keep field match).
            a = rng.randrange(paper)
            b = rng.randrange(paper)
            target = a if labels[a] == labels[paper] else b
            if target not in cited:
                cited.add(target)
                edges.append((paper, target))
    return DiGraph(labels, edges)


def main() -> None:
    network = build_citation_network()
    print(f"citation network: {network}")

    limits = SearchLimits(max_embeddings=5_000, collect=False)

    patterns = {
        # A db paper citing an ml paper citing a theory paper.
        "cross-field chain": DiGraph(
            ["db", "ml", "theory"], [(0, 1), (1, 2)]
        ),
        # Co-citation: two db papers citing the same systems paper.
        "co-citation": DiGraph(
            ["db", "db", "systems"], [(0, 2), (1, 2)]
        ),
        # Bibliographic coupling: one paper citing two fields.
        "coupling": DiGraph(
            ["ml", "db", "systems"], [(0, 1), (0, 2)]
        ),
        # A feedback loop — impossible here (citations point backwards),
        # so the adapter must report zero.
        "2-cycle (impossible)": DiGraph(
            ["db", "db"], [(0, 1), (1, 0)]
        ),
    }

    print(f"\n{'pattern':22s} {'matches':>8s} {'recursions':>10s}")
    for name, pattern in patterns.items():
        result = match_directed(pattern, network, limits=limits)
        print(f"{name:22s} {result.num_embeddings:8d} "
              f"{result.stats.recursions:10d}")

    # Direction matters: reversing a chain changes the answer.
    forward = DiGraph(["db", "ml"], [(0, 1)])
    backward = DiGraph(["db", "ml"], [(1, 0)])
    nf = match_directed(forward, network, limits=limits).num_embeddings
    nb = match_directed(backward, network, limits=limits).num_embeddings
    print(f"\ndb->ml citations: {nf};  ml->db citations: {nb} "
          f"(direction-sensitive, as it must be)")


if __name__ == "__main__":
    main()
