#!/usr/bin/env python
"""Edge-labeled matching on a tiny knowledge graph (adapter demo).

Knowledge graphs label *relations*, not just entities.  §2.2 notes the
method adapts to edge-labeled graphs; :mod:`repro.adapters` realizes
that with the midpoint reduction, so GuP can answer typed-relation
pattern queries such as "a person who FOUNDED a company that ACQUIRED
another company".

Run:  python examples/knowledge_graph_edge_labels.py
"""

import random

from repro.adapters import EdgeLabeledGraph, match_edge_labeled
from repro.matching.limits import SearchLimits

ENTITY_TYPES = ["person", "company", "city"]
RELATIONS = {
    ("person", "company"): ["founded", "works_at"],
    ("company", "company"): ["acquired", "partners"],
    ("person", "city"): ["lives_in"],
    ("company", "city"): ["based_in"],
    ("person", "person"): ["knows"],
}


def build_knowledge_graph(num_entities=300, num_facts=800, seed=17):
    rng = random.Random(seed)
    labels = [rng.choice(ENTITY_TYPES) for _ in range(num_entities)]
    facts = {}
    attempts = 0
    while len(facts) < num_facts and attempts < num_facts * 20:
        attempts += 1
        a = rng.randrange(num_entities)
        b = rng.randrange(num_entities)
        if a == b or (min(a, b), max(a, b)) in facts:
            continue
        key = (labels[a], labels[b])
        relations = RELATIONS.get(key) or RELATIONS.get((key[1], key[0]))
        if relations is None:
            continue
        facts[(min(a, b), max(a, b))] = rng.choice(relations)
    return EdgeLabeledGraph(
        labels, [(u, v, rel) for (u, v), rel in facts.items()]
    )


def main() -> None:
    kg = build_knowledge_graph()
    print(f"knowledge graph: {kg}")

    limits = SearchLimits(max_embeddings=2_000, collect=False)

    patterns = {
        "founder of acquirer": EdgeLabeledGraph(
            ["person", "company", "company"],
            [(0, 1, "founded"), (1, 2, "acquired")],
        ),
        "colleagues": EdgeLabeledGraph(
            ["person", "company", "person"],
            [(0, 1, "works_at"), (2, 1, "works_at")],
        ),
        "local founder": EdgeLabeledGraph(
            ["person", "company", "city"],
            [(0, 1, "founded"), (1, 2, "based_in"), (0, 2, "lives_in")],
        ),
        "wrong relation": EdgeLabeledGraph(
            ["person", "company"],
            [(0, 1, "acquired")],  # person-ACQUIRED-company never exists
        ),
    }

    print(f"\n{'pattern':22s} {'matches':>8s} {'recursions':>10s}")
    for name, pattern in patterns.items():
        result = match_edge_labeled(pattern, kg, limits=limits)
        print(f"{name:22s} {result.num_embeddings:8d} "
              f"{result.stats.recursions:10d}")

    # Relation labels matter: the same topology with a different relation
    # gives a different answer.
    founded = EdgeLabeledGraph(
        ["person", "company"], [(0, 1, "founded")]
    )
    works = EdgeLabeledGraph(
        ["person", "company"], [(0, 1, "works_at")]
    )
    nf = match_edge_labeled(founded, kg, limits=limits).num_embeddings
    nw = match_edge_labeled(works, kg, limits=limits).num_embeddings
    print(f"\nFOUNDED facts: {nf};  WORKS_AT facts: {nw} "
          f"(same topology, different relations)")


if __name__ == "__main__":
    main()
