#!/usr/bin/env python
"""Quickstart: build graphs, run GuP, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, GuPConfig, SearchLimits, match


def main() -> None:
    # -- 1. Build a data graph: a small labeled social/citation graph --
    data_builder = GraphBuilder()
    #                            0    1    2    3    4    5    6    7
    data_builder.add_vertices(["A", "B", "C", "A", "B", "C", "A", "B"])
    data_builder.add_edges(
        [
            (0, 1), (1, 2), (2, 0),      # triangle A-B-C
            (3, 4), (4, 5), (5, 3),      # second triangle A-B-C
            (2, 3),                      # bridge
            (6, 7), (7, 2),              # pendant path A-B-C
        ]
    )
    data = data_builder.build()
    print(f"data graph: {data}")

    # -- 2. Build a query: an A-B-C triangle ---------------------------
    query_builder = GraphBuilder()
    query_builder.add_vertices(["A", "B", "C"])
    query_builder.add_edges([(0, 1), (1, 2), (2, 0)])
    query = query_builder.build()
    print(f"query graph: {query}")

    # -- 3. Match ------------------------------------------------------
    result = match(query, data)
    print(f"\nembeddings ({result.num_embeddings}):")
    for embedding in sorted(result.embeddings):
        pairs = ", ".join(f"u{i} -> v{v}" for i, v in enumerate(embedding))
        print(f"  {{{pairs}}}")

    # -- 4. Inspect the search -----------------------------------------
    stats = result.stats
    print(f"\nsearch statistics:")
    print(f"  recursions:        {stats.recursions}")
    print(f"  futile recursions: {stats.futile_recursions}")
    print(f"  candidates:        {stats.candidate_vertices} vertices, "
          f"{stats.candidate_edges} edges")
    print(f"  status:            {result.status.value}")

    # -- 5. Compare against guard-free backtracking ---------------------
    baseline = match(query, data, config=GuPConfig.baseline())
    assert sorted(baseline.embeddings) == sorted(result.embeddings)
    print(f"\nbaseline (no guards): {baseline.stats.recursions} recursions "
          f"vs GuP {stats.recursions}")

    # -- 6. Limits: stop after the first embedding ----------------------
    first = match(query, data, limits=SearchLimits(max_embeddings=1))
    print(f"first embedding only: {first.embeddings[0]} "
          f"(status: {first.status.value})")


if __name__ == "__main__":
    main()
