#!/usr/bin/env python
"""Fraud-ring detection: the cycle queries guards were built for.

The paper motivates guard-based pruning with crime-detection workloads
(its refs [29, 31]): money-laundering *rings* are cycles of
transactions between accounts of specific types, and cycles are exactly
the structures backtracking struggles with — "cycles are usually
difficult to find because of the sparseness of real-world graphs" (§1):
long partial paths abound, but closures are rare, so searches drown in
deadends.

This example builds a synthetic account/transaction graph, plants a few
rings, and compares GuP against DAF-style failing-set search on ring
queries of growing length, reporting recursions (search-space size).

Run:  python examples/fraud_ring_detection.py
"""

import random

from repro import GuPConfig, SearchLimits, match
from repro.baselines.registry import get_matcher
from repro.graph.builder import GraphBuilder

ACCOUNT_TYPES = ["retail", "business", "offshore", "mule"]


def build_transaction_graph(num_accounts=1200, num_transfers=2100,
                            planted_rings=(6, 8, 10), seed=13):
    """Sparse random transfer graph with a few planted typed rings."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    for _ in range(num_accounts):
        builder.add_vertex(rng.choice(ACCOUNT_TYPES))

    # Background transfers (random sparse structure).
    added = 0
    while added < num_transfers:
        a = rng.randrange(num_accounts)
        b = rng.randrange(num_accounts)
        if a != b and builder.add_edge(a, b):
            added += 1

    # Planted rings: retail -> mule -> ... -> offshore -> retail.
    rings = []
    for length in planted_rings:
        members = rng.sample(range(num_accounts), length)
        for i in range(length):
            builder.add_edge(members[i], members[(i + 1) % length])
        rings.append(members)
    return builder.build(), rings


def ring_query(data, ring_members):
    """The typed cycle pattern of a planted ring."""
    builder = GraphBuilder()
    ids = builder.add_vertices(data.label(v) for v in ring_members)
    for i in range(len(ids)):
        builder.add_edge(ids[i], ids[(i + 1) % len(ids)])
    return builder.build()


def main() -> None:
    data, rings = build_transaction_graph()
    print(f"transaction graph: {data}")
    print(f"planted rings of lengths: {[len(r) for r in rings]}\n")

    limits = SearchLimits(max_embeddings=1_000, collect=True)

    print(f"{'ring':8s} {'found':>6s} {'GuP rec':>8s} {'DAF rec':>8s} "
          f"{'Baseline rec':>12s}")
    for members in rings:
        query = ring_query(data, members)
        gup = match(query, data, limits=limits)
        daf = get_matcher("DAF").match(query, data, limits)
        base = match(query, data, config=GuPConfig.baseline(), limits=limits)
        assert gup.num_embeddings == daf.num_embeddings == base.num_embeddings
        print(
            f"len={len(members):<4d} {gup.num_embeddings:6d} "
            f"{gup.stats.recursions:8d} {daf.stats.recursions:8d} "
            f"{base.stats.recursions:12d}"
        )

    # Verify the planted ring itself is among the matches: the identity
    # assignment (query vertex i -> planted member i) is an embedding by
    # construction, so the exact tuple must be found.
    query = ring_query(data, rings[0])
    result = match(query, data, limits=SearchLimits(max_embeddings=100_000))
    planted = tuple(rings[0])
    found = {tuple(e) for e in result.embeddings}
    print(f"\nplanted ring of length {len(planted)} recovered: "
          f"{'yes' if planted in found else 'NO (bug!)'} "
          f"({result.num_embeddings} total matches of its pattern)")


if __name__ == "__main__":
    main()
