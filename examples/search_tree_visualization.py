#!/usr/bin/env python
"""Render the paper's Fig. 3 search trees as text.

Shows the conventional backtracking tree (every node of Fig. 3) next to
the guarded tree (with the shaded nodes pruned), on the paper's own
Fig. 1 example, then on a mined hard query where the pruning is larger.

Run:  python examples/search_tree_visualization.py
"""

from repro.analysis import render_search_tree, trace_search
from repro.core.config import GuPConfig
from repro.matching.limits import SearchLimits
from repro.workload import (
    load_dataset,
    mine_hard_queries,
    paper_example_data,
    paper_example_query,
)


def main() -> None:
    query = paper_example_query()
    data = paper_example_data()

    print("=" * 68)
    print("Paper example (Fig. 1) — conventional backtracking (Fig. 3)")
    print("=" * 68)
    print(render_search_tree(query, data, GuPConfig.baseline(), reorder=False))

    print()
    print("=" * 68)
    print("Paper example — full GuP (the shaded nodes are gone)")
    print("=" * 68)
    print(render_search_tree(query, data, GuPConfig.full(), reorder=False))

    # A bigger instance: just the headline numbers, not the full tree.
    print()
    print("=" * 68)
    print("Mined hard query on the WordNet stand-in (summary only)")
    print("=" * 68)
    wordnet = load_dataset("wordnet", scale=0.5, seed=2023)
    hard = mine_hard_queries(
        wordnet, count=1, size=12, seed=5, candidate_factor=6,
        probe_recursions=4_000,
    )[0]
    limits = SearchLimits(max_embeddings=50, collect=False)
    for name, config in (
        ("conventional", GuPConfig.baseline()),
        ("GuP", GuPConfig.full()),
    ):
        tree = trace_search(hard, wordnet, config, limits=limits)
        print(
            f"{name:14s} {tree.num_recursions():6d} recursions, "
            f"{tree.num_conflicts():5d} conflicts, "
            f"{len(tree.embeddings):3d} embeddings found"
        )


if __name__ == "__main__":
    main()
