#!/usr/bin/env python
"""Compare every matcher in the registry on one workload.

Runs GuP, DAF, GQL-G, GQL-R, RM (and the VF2 oracle on the smallest
queries) over a mined hard query set of the WordNet stand-in — the
deadend-rich regime where the paper's evaluation separates the methods —
and prints a ranking by search-space size.

Run:  python examples/method_comparison.py
"""

from repro.baselines.registry import PAPER_METHODS, get_matcher
from repro.bench.report import format_table
from repro.matching.limits import SearchLimits
from repro.workload import load_dataset, mine_hard_queries


def main() -> None:
    data = load_dataset("wordnet", seed=2023)
    print(f"data graph: {data}")

    queries = mine_hard_queries(
        data, count=5, size=16, density="sparse", seed=99,
        candidate_factor=8, probe_recursions=10_000,
    )
    print(f"mined {len(queries)} hard queries "
          f"(sizes: {[q.num_vertices for q in queries]})\n")

    limits = SearchLimits(
        max_embeddings=1_000, max_recursions=50_000, collect=False
    )

    rows = []
    reference_counts = None
    for method in PAPER_METHODS:
        matcher = get_matcher(method)
        recursions = futile = embeddings = 0
        seconds = 0.0
        counts = []
        for query in queries:
            result = matcher.match(query, data, limits)
            recursions += result.stats.recursions
            futile += result.stats.futile_recursions
            embeddings += result.num_embeddings
            seconds += result.total_seconds
            counts.append(result.num_embeddings)
        if reference_counts is None:
            reference_counts = counts
        assert counts == reference_counts, (
            f"{method} disagrees: {counts} != {reference_counts}"
        )
        rows.append(
            [method, recursions, futile, embeddings, f"{seconds:.2f}s"]
        )

    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["Method", "Recursions", "Futile", "Embeddings", "Wall"],
            rows,
            title="Hard-query comparison (sorted by search-space size)",
        )
    )
    print("\nAll methods returned identical embedding counts "
          "(cross-validated).")


if __name__ == "__main__":
    main()
